//! Deterministic synthetic character corpus.
//!
//! Table 6's convergence experiment trains on "an industrial text dataset"
//! that is not available; per the substitution rule we use a synthetic
//! corpus with enough structure that a language model's loss meaningfully
//! decreases: a second-order Markov chain over a small alphabet with a few
//! embedded high-frequency "words". What matters for the experiment is the
//! *relative* loss of synchronous vs. lock-free training on the same data,
//! not the absolute value.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A generated corpus plus train/validation split.
#[derive(Debug, Clone)]
pub struct CharCorpus {
    pub vocab: usize,
    pub train: Vec<usize>,
    pub valid: Vec<usize>,
}

impl CharCorpus {
    /// Generate `len` training tokens (plus 20% validation) over a vocabulary
    /// of `vocab` symbols, deterministically from `seed`.
    pub fn generate(vocab: usize, len: usize, seed: u64) -> Self {
        assert!(vocab >= 4);
        let mut rng = StdRng::seed_from_u64(seed);
        // Second-order transition preferences: next ≈ f(prev two), with
        // noise. Gives the model real structure to learn.
        let table: Vec<usize> = (0..vocab * vocab)
            .map(|_| rng.gen_range(0..vocab))
            .collect();
        let total = len + len / 5;
        let mut out = Vec::with_capacity(total);
        out.push(rng.gen_range(0..vocab));
        out.push(rng.gen_range(0..vocab));
        while out.len() < total {
            let a = out[out.len() - 2];
            let b = out[out.len() - 1];
            let next = if rng.gen_bool(0.85) {
                table[a * vocab + b] // learnable structure
            } else {
                rng.gen_range(0..vocab) // noise floor
            };
            out.push(next);
        }
        let valid = out.split_off(len);
        Self {
            vocab,
            train: out,
            valid,
        }
    }

    /// Sample a `(input, target)` window of `seq_len` tokens from the
    /// training split.
    pub fn sample(&self, seq_len: usize, rng: &mut StdRng) -> (Vec<usize>, Vec<usize>) {
        let max_start = self.train.len() - seq_len - 1;
        let start = rng.gen_range(0..max_start);
        let input = self.train[start..start + seq_len].to_vec();
        let target = self.train[start + 1..start + seq_len + 1].to_vec();
        (input, target)
    }

    /// Iterate consecutive validation windows.
    pub fn valid_windows(
        &self,
        seq_len: usize,
    ) -> impl Iterator<Item = (Vec<usize>, Vec<usize>)> + '_ {
        (0..(self.valid.len() - 1) / seq_len).map(move |i| {
            let start = i * seq_len;
            (
                self.valid[start..start + seq_len].to_vec(),
                self.valid[start + 1..start + seq_len + 1].to_vec(),
            )
        })
    }

    /// Entropy floor estimate: with 85% deterministic transitions the
    /// minimal achievable cross-entropy is well below log(vocab).
    pub fn uniform_loss(&self) -> f32 {
        (self.vocab as f32).ln()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_generation() {
        let a = CharCorpus::generate(16, 1000, 42);
        let b = CharCorpus::generate(16, 1000, 42);
        assert_eq!(a.train, b.train);
        assert_eq!(a.valid, b.valid);
        let c = CharCorpus::generate(16, 1000, 43);
        assert_ne!(a.train, c.train);
    }

    #[test]
    fn sizes_and_vocab_bounds() {
        let c = CharCorpus::generate(16, 1000, 1);
        assert_eq!(c.train.len(), 1000);
        assert_eq!(c.valid.len(), 200);
        assert!(c.train.iter().all(|&t| t < 16));
        assert!(c.valid.iter().all(|&t| t < 16));
    }

    #[test]
    fn corpus_has_learnable_structure() {
        // Bigram-conditioned entropy must be far below uniform: count the
        // most frequent successor of each bigram.
        let c = CharCorpus::generate(8, 20_000, 7);
        let v = c.vocab;
        let mut counts = vec![0u32; v * v * v];
        for w in c.train.windows(3) {
            counts[(w[0] * v + w[1]) * v + w[2]] += 1;
        }
        let mut top = 0u64;
        let mut total = 0u64;
        for bigram in 0..v * v {
            let row = &counts[bigram * v..(bigram + 1) * v];
            top += *row.iter().max().unwrap() as u64;
            total += row.iter().map(|&x| x as u64).sum::<u64>();
        }
        let top_frac = top as f64 / total as f64;
        assert!(top_frac > 0.8, "structure too weak: {top_frac}");
    }

    #[test]
    fn sampling_windows_align() {
        let c = CharCorpus::generate(8, 1000, 3);
        let mut rng = StdRng::seed_from_u64(0);
        let (x, y) = c.sample(32, &mut rng);
        assert_eq!(x.len(), 32);
        assert_eq!(y.len(), 32);
        // Target is input shifted by one.
        assert_eq!(&x[1..], &y[..31]);
    }

    #[test]
    fn valid_windows_cover_split() {
        let c = CharCorpus::generate(8, 1000, 3);
        let windows: Vec<_> = c.valid_windows(32).collect();
        assert_eq!(windows.len(), 199 / 32);
        for (x, y) in windows {
            assert_eq!(x.len(), 32);
            assert_eq!(&x[1..], &y[..31]);
        }
    }
}
