//! Autoregressive sampling from a trained [`crate::TinyGpt`] — the
//! qualitative check that the convergence experiment's models actually
//! learned the corpus structure, plus perplexity helpers.

use crate::model::TinyGpt;
use crate::ops::softmax_rows;
use rand::rngs::StdRng;
use rand::Rng;

/// Sampling controls.
#[derive(Debug, Clone, Copy)]
pub struct SampleConfig {
    /// Softmax temperature; 0.0 = greedy argmax.
    pub temperature: f32,
    /// Number of tokens to generate.
    pub tokens: usize,
}

impl Default for SampleConfig {
    fn default() -> Self {
        Self {
            temperature: 0.8,
            tokens: 64,
        }
    }
}

/// Next-token distribution given a context (last position's logits).
pub fn next_token_probs(model: &TinyGpt, params: &[Vec<f32>], context: &[usize]) -> Vec<f32> {
    let v = model.config.vocab;
    let logits = model.logits(params, context);
    let s = context.len();
    let last = &logits[(s - 1) * v..s * v];
    softmax_rows(last, 1, v, false)
}

/// Generate a continuation of `prompt`.
pub fn generate(
    model: &TinyGpt,
    params: &[Vec<f32>],
    prompt: &[usize],
    cfg: SampleConfig,
    rng: &mut StdRng,
) -> Vec<usize> {
    assert!(!prompt.is_empty());
    let mut seq: Vec<usize> = prompt.to_vec();
    let max_ctx = model.config.seq_len;
    for _ in 0..cfg.tokens {
        let start = seq.len().saturating_sub(max_ctx);
        let context = &seq[start..];
        let mut probs = next_token_probs(model, params, context);
        let next = if cfg.temperature <= 0.0 {
            probs
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .map_or(0, |(i, _)| i)
        } else {
            // Temperature rescale in probability space: p^(1/T).
            let inv_t = 1.0 / cfg.temperature;
            for p in probs.iter_mut() {
                *p = p.max(1e-12).powf(inv_t);
            }
            let total: f32 = probs.iter().sum();
            let mut x: f32 = rng.gen::<f32>() * total;
            let mut pick = probs.len() - 1;
            for (i, &p) in probs.iter().enumerate() {
                if x < p {
                    pick = i;
                    break;
                }
                x -= p;
            }
            pick
        };
        seq.push(next);
    }
    seq.split_off(prompt.len())
}

/// Perplexity over token windows: `exp(mean cross-entropy)`.
pub fn perplexity(
    model: &TinyGpt,
    params: &[Vec<f32>],
    windows: impl Iterator<Item = (Vec<usize>, Vec<usize>)>,
) -> f32 {
    let mut total = 0.0f32;
    let mut n = 0usize;
    for (x, y) in windows {
        total += model.loss(params, &x, &y);
        n += 1;
    }
    (total / n.max(1) as f32).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::CharCorpus;
    use crate::model::GptConfig;
    use rand::SeedableRng;

    fn tiny() -> (TinyGpt, Vec<Vec<f32>>) {
        let m = TinyGpt::new(GptConfig {
            vocab: 8,
            seq_len: 16,
            d_model: 16,
            d_ffn: 32,
            layers: 1,
        });
        let p = m.init_params(11);
        (m, p)
    }

    #[test]
    fn probabilities_are_normalized() {
        let (m, p) = tiny();
        let probs = next_token_probs(&m, &p, &[0, 1, 2]);
        assert_eq!(probs.len(), 8);
        let sum: f32 = probs.iter().sum();
        assert!((sum - 1.0).abs() < 1e-5);
        assert!(probs.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn greedy_generation_is_deterministic() {
        let (m, p) = tiny();
        let cfg = SampleConfig {
            temperature: 0.0,
            tokens: 12,
        };
        let mut r1 = StdRng::seed_from_u64(1);
        let mut r2 = StdRng::seed_from_u64(2); // greedy ignores the rng
        let a = generate(&m, &p, &[3, 4], cfg, &mut r1);
        let b = generate(&m, &p, &[3, 4], cfg, &mut r2);
        assert_eq!(a, b);
        assert_eq!(a.len(), 12);
        assert!(a.iter().all(|&t| t < 8));
    }

    #[test]
    fn sampled_generation_respects_seed() {
        let (m, p) = tiny();
        let cfg = SampleConfig {
            temperature: 1.0,
            tokens: 20,
        };
        let a = generate(&m, &p, &[0], cfg, &mut StdRng::seed_from_u64(7));
        let b = generate(&m, &p, &[0], cfg, &mut StdRng::seed_from_u64(7));
        assert_eq!(a, b);
    }

    #[test]
    fn context_window_clipping() {
        // Prompts longer than seq_len must still work (sliding window).
        let (m, p) = tiny();
        let long_prompt: Vec<usize> = (0..40).map(|i| i % 8).collect();
        let out = generate(
            &m,
            &p,
            &long_prompt,
            SampleConfig {
                temperature: 0.0,
                tokens: 4,
            },
            &mut StdRng::seed_from_u64(1),
        );
        assert_eq!(out.len(), 4);
    }

    #[test]
    fn trained_model_has_lower_perplexity() {
        let corpus = CharCorpus::generate(8, 20_000, 3);
        let cfg = crate::trainer::TrainConfig {
            model: GptConfig {
                vocab: 8,
                seq_len: 24,
                d_model: 24,
                d_ffn: 48,
                layers: 2,
            },
            steps: 200,
            seq_len: 24,
            ..Default::default()
        };
        let m = TinyGpt::new(cfg.model);
        let untrained = m.init_params(cfg.seed);
        let before = perplexity(&m, &untrained, corpus.valid_windows(24));
        let report = crate::trainer::train_sync(&cfg, &corpus);
        // valid_loss is the mean cross-entropy of the trained model.
        let after = report.valid_loss.exp();
        assert!(
            after < before * 0.8,
            "perplexity must drop: {before} → {after}"
        );
    }
}
