//! Real training substrate for the Angel-PTM reproduction.
//!
//! The simulation crates reproduce the paper's *systems* results (capacity,
//! throughput, scalability). What they cannot reproduce is the *model
//! quality* claim of Section 6.5: that the Lock-Free Updating Mechanism's
//! staleness "has little impact to the model quality" (Table 6's validation
//! loss: 0.853 synchronous vs 0.861 lock-free). That claim is about SGD
//! dynamics, so this crate trains real models:
//!
//! * [`ops`] — dense f32 kernels (matmul, softmax, layernorm, GeLU,
//!   embedding, cross-entropy) with hand-derived backward passes, each
//!   verified against finite differences in the tests;
//! * [`bf16`] — BF16 emulation by round-to-nearest-even mantissa truncation,
//!   matching the paper's "stores the model states in FP32 while computes in
//!   BF16";
//! * [`model`] — a small but genuine pre-LN GPT (causal self-attention +
//!   FFN) whose parameters live in per-layer flat groups so the lock-free
//!   machinery can own them;
//! * [`adam`] — mixed-precision Adam (FP32 master + moments, BF16
//!   parameters/gradients), implementing `angel_core::lockfree::Optimizer`;
//! * [`data`] — a deterministic synthetic character corpus;
//! * [`trainer`] — synchronous and lock-free training loops sharing the same
//!   model/optimizer code, for the Table 6 convergence comparison.

// Unit tests keep panicking assertions; library code is covered by the
// workspace-wide unwrap/expect ban (clippy.toml disallowed-methods).
#![cfg_attr(test, allow(clippy::disallowed_methods))]

pub mod adam;
pub mod bf16;
pub mod data;
pub mod generate;
pub mod model;
pub mod ops;
pub mod trainer;

pub use adam::{AdamConfig, MixedPrecisionAdam};
pub use bf16::bf16_round;
pub use data::CharCorpus;
pub use generate::{generate, perplexity, SampleConfig};
pub use model::{GptConfig, TinyGpt};
pub use trainer::{train_lockfree, train_sync, TrainConfig, TrainReport};
