//! The discrete-event engine: resources with CUDA-stream (FIFO) semantics, a
//! dependency-aware task executor, and memory-domain peak tracking.
//!
//! # Execution model
//!
//! A [`SimTask`] is bound to exactly one [`ResourceId`] and may depend on any
//! set of earlier tasks. Execution follows stream semantics, matching how the
//! paper's Executor "inserts computations into the corresponding stream and
//! schedules them to the computation threads in the order of insertion":
//!
//! * tasks on the **same resource** start in submission order, back to back;
//! * a task additionally waits for **all its dependencies** to complete;
//! * task duration is either fixed ([`Work::Duration`]) or derived from the
//!   resource's bandwidth and latency ([`Work::Bytes`]).
//!
//! Memory domains track allocation high-water marks: each task can acquire
//! bytes at start and release bytes at completion, and the executor records
//! the peak per domain — how the paper's phase-2 OOM check is evaluated.

use serde::{Deserialize, Serialize};
use std::collections::BinaryHeap;

use crate::Ns;

/// Handle to a resource registered in [`Resources`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ResourceId(pub usize);

/// Handle to a memory domain (one per device whose peak usage matters).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct MemDomainId(pub usize);

/// The registry of resources and memory domains for one simulation.
#[derive(Debug, Clone, Default)]
pub struct Resources {
    names: Vec<String>,
    /// `Some((bandwidth_bytes_per_s, latency_ns))` for transfer resources;
    /// `None` for compute resources that only take fixed durations.
    links: Vec<Option<(u64, Ns)>>,
    mem_names: Vec<String>,
    mem_capacity: Vec<u64>,
}

impl Resources {
    pub fn new() -> Self {
        Self::default()
    }

    /// Resource names in id order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.names.iter().map(|s| s.as_str())
    }

    /// Register a compute resource (GPU stream, CPU worker pool, ...).
    pub fn add_compute(&mut self, name: impl Into<String>) -> ResourceId {
        self.names.push(name.into());
        self.links.push(None);
        ResourceId(self.names.len() - 1)
    }

    /// Register a transfer resource with a bandwidth/latency cost model
    /// (PCIe channel, NVLink fabric, NIC, SSD channel).
    pub fn add_link(
        &mut self,
        name: impl Into<String>,
        bandwidth: u64,
        latency_ns: Ns,
    ) -> ResourceId {
        assert!(bandwidth > 0);
        self.names.push(name.into());
        self.links.push(Some((bandwidth, latency_ns)));
        ResourceId(self.names.len() - 1)
    }

    /// Register a memory domain with a capacity (for OOM/peak reporting).
    pub fn add_mem_domain(&mut self, name: impl Into<String>, capacity: u64) -> MemDomainId {
        self.mem_names.push(name.into());
        self.mem_capacity.push(capacity);
        MemDomainId(self.mem_names.len() - 1)
    }

    pub fn name(&self, id: ResourceId) -> &str {
        &self.names[id.0]
    }

    pub fn mem_name(&self, id: MemDomainId) -> &str {
        &self.mem_names[id.0]
    }

    pub fn mem_capacity(&self, id: MemDomainId) -> u64 {
        self.mem_capacity[id.0]
    }

    pub fn num_resources(&self) -> usize {
        self.names.len()
    }

    pub fn num_mem_domains(&self) -> usize {
        self.mem_names.len()
    }

    fn duration_of(&self, resource: ResourceId, work: &Work) -> Ns {
        match (work, self.links[resource.0]) {
            (Work::Duration(ns), _) => *ns,
            (Work::Bytes(bytes), Some((bw, lat))) => {
                lat + angel_hw::link::bytes_over_bandwidth_ns(*bytes, bw)
            }
            (Work::Bytes(_), None) => {
                panic!(
                    "Work::Bytes submitted to compute resource '{}' (no bandwidth model)",
                    self.names[resource.0]
                )
            }
        }
    }
}

/// How much simulated work a task performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Work {
    /// Fixed duration in nanoseconds (computed by a cost model upstream).
    Duration(Ns),
    /// A transfer of this many bytes; duration comes from the resource's
    /// bandwidth/latency.
    Bytes(u64),
}

/// Memory side effect of a task on one domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemEffect {
    pub domain: MemDomainId,
    /// Bytes acquired when the task starts (e.g. destination buffer of a
    /// move-in).
    pub acquire: u64,
    /// Bytes released when the task completes (e.g. source of a move-out,
    /// activation freed by the last consumer).
    pub release: u64,
}

/// One node of the schedule DAG.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimTask {
    pub resource: ResourceId,
    pub work: Work,
    /// Indices of tasks (within the same submission) that must complete
    /// before this one starts.
    pub deps: Vec<usize>,
    pub mem: Vec<MemEffect>,
    /// Free-form label, used for tracing and per-kind busy accounting.
    pub label: String,
}

impl SimTask {
    pub fn new(resource: ResourceId, work: Work) -> Self {
        Self {
            resource,
            work,
            deps: Vec::new(),
            mem: Vec::new(),
            label: String::new(),
        }
    }

    /// A transfer of `bytes` on a link resource; duration comes from the
    /// link's bandwidth/latency model.
    pub fn transfer(resource: ResourceId, bytes: u64) -> Self {
        Self::new(resource, Work::Bytes(bytes))
    }

    /// A fixed-duration occupancy of a resource (duration computed by a
    /// cost model upstream).
    pub fn duration(resource: ResourceId, duration_ns: Ns) -> Self {
        Self::new(resource, Work::Duration(duration_ns))
    }

    pub fn with_deps(mut self, deps: impl IntoIterator<Item = usize>) -> Self {
        self.deps.extend(deps);
        self
    }

    pub fn with_mem(mut self, effect: MemEffect) -> Self {
        self.mem.push(effect);
        self
    }

    pub fn with_label(mut self, label: impl Into<String>) -> Self {
        self.label = label.into();
        self
    }
}

/// Result of executing one schedule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExecutionReport {
    /// Completion time of the last task.
    pub makespan: Ns,
    /// Busy nanoseconds per resource, indexed by `ResourceId.0`.
    pub busy: Vec<Ns>,
    /// Peak bytes per memory domain, indexed by `MemDomainId.0`.
    pub peak_mem: Vec<u64>,
    /// Final bytes per memory domain (non-zero = leak, unless intentional).
    pub final_mem: Vec<u64>,
    /// Per-task completion times (same order as submission).
    pub finish_times: Vec<Ns>,
    /// Per-task start times.
    pub start_times: Vec<Ns>,
}

impl ExecutionReport {
    /// Utilization of a resource: busy ÷ makespan.
    pub fn utilization(&self, r: ResourceId) -> f64 {
        if self.makespan == 0 {
            0.0
        } else {
            self.busy[r.0] as f64 / self.makespan as f64
        }
    }

    /// The paper's idle fraction for a resource: 1 − utilization. Section 4.3
    /// observes "nearly 80% of the iteration time is idle" when SSD is used
    /// without the lock-free mechanism.
    pub fn idle_fraction(&self, r: ResourceId) -> f64 {
        1.0 - self.utilization(r)
    }

    /// Overlap ratio: Σ busy ÷ makespan — how many resources were kept busy
    /// on average. 1.0 = perfectly serial, N = N-way overlap.
    pub fn overlap_ratio(&self) -> f64 {
        if self.makespan == 0 {
            0.0
        } else {
            self.busy.iter().sum::<Ns>() as f64 / self.makespan as f64
        }
    }
}

/// A submitted schedule ready to execute.
#[derive(Debug, Clone)]
pub struct Simulation {
    resources: Resources,
    tasks: Vec<SimTask>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Pending {
    finish: Ns,
    task: usize,
}

// Min-heap ordering by finish time (then task index for determinism).
impl Ord for Pending {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other
            .finish
            .cmp(&self.finish)
            .then(other.task.cmp(&self.task))
    }
}

impl PartialOrd for Pending {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Simulation {
    pub fn new(resources: Resources) -> Self {
        Self {
            resources,
            tasks: Vec::new(),
        }
    }

    pub fn resources(&self) -> &Resources {
        &self.resources
    }

    /// Submit a task; returns its index for use in later `deps`.
    pub fn submit(&mut self, task: SimTask) -> usize {
        for &d in &task.deps {
            assert!(
                d < self.tasks.len(),
                "dependency on not-yet-submitted task {d}"
            );
        }
        assert!(
            task.resource.0 < self.resources.num_resources(),
            "unknown resource"
        );
        self.tasks.push(task);
        self.tasks.len() - 1
    }

    pub fn num_tasks(&self) -> usize {
        self.tasks.len()
    }

    /// Submitted tasks in submission order.
    pub fn tasks(&self) -> impl Iterator<Item = &SimTask> {
        self.tasks.iter()
    }

    /// Execute the schedule to completion and report.
    ///
    /// The executor is an event-driven list scheduler: it maintains, per
    /// resource, the submission-ordered queue of its tasks; the head of a
    /// queue starts as soon as (a) the resource is free and (b) all its
    /// dependencies completed. This mirrors CUDA stream semantics: a stream
    /// blocks on its head task's events, it never reorders.
    pub fn run(&self) -> ExecutionReport {
        let n = self.tasks.len();
        let nr = self.resources.num_resources();
        let nm = self.resources.num_mem_domains();

        // Per-resource FIFO queues of task indices.
        let mut queues: Vec<std::collections::VecDeque<usize>> =
            vec![std::collections::VecDeque::new(); nr];
        for (i, t) in self.tasks.iter().enumerate() {
            queues[t.resource.0].push_back(i);
        }

        let mut deps_left: Vec<usize> = self.tasks.iter().map(|t| t.deps.len()).collect();
        // Reverse adjacency: who waits on me.
        let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, t) in self.tasks.iter().enumerate() {
            for &d in &t.deps {
                dependents[d].push(i);
            }
        }

        let mut resource_free_at: Vec<Ns> = vec![0; nr];
        let mut busy: Vec<Ns> = vec![0; nr];
        let mut mem_now: Vec<u64> = vec![0; nm];
        let mut peak_mem: Vec<u64> = vec![0; nm];
        let mut start_times: Vec<Ns> = vec![0; n];
        let mut finish_times: Vec<Ns> = vec![0; n];
        let mut done: Vec<bool> = vec![false; n];
        let mut started: Vec<bool> = vec![false; n];
        let mut dep_ready_at: Vec<Ns> = vec![0; n];

        let mut heap: BinaryHeap<Pending> = BinaryHeap::new();
        let mut now: Ns = 0;
        let mut completed = 0usize;

        // Try to start the head task of each resource queue.
        macro_rules! try_start_heads {
            () => {
                for r in 0..nr {
                    while let Some(&head) = queues[r].front() {
                        if started[head] {
                            queues[r].pop_front();
                            continue;
                        }
                        if deps_left[head] > 0 {
                            break; // stream blocks on its head
                        }
                        let start = now.max(resource_free_at[r]).max(dep_ready_at[head]);
                        let task = &self.tasks[head];
                        let dur = self.resources.duration_of(task.resource, &task.work);
                        let finish = start + dur;
                        started[head] = true;
                        start_times[head] = start;
                        finish_times[head] = finish;
                        resource_free_at[r] = finish;
                        busy[r] += dur;
                        // Acquire memory at start.
                        for e in &task.mem {
                            mem_now[e.domain.0] += e.acquire;
                            peak_mem[e.domain.0] = peak_mem[e.domain.0].max(mem_now[e.domain.0]);
                        }
                        heap.push(Pending { finish, task: head });
                        queues[r].pop_front();
                    }
                }
            };
        }

        try_start_heads!();
        while let Some(Pending { finish, task }) = heap.pop() {
            now = finish;
            done[task] = true;
            completed += 1;
            // Release memory at completion.
            for e in &self.tasks[task].mem {
                let m = &mut mem_now[e.domain.0];
                assert!(*m >= e.release, "memory underflow in domain {}", e.domain.0);
                *m -= e.release;
            }
            for &dep in &dependents[task] {
                deps_left[dep] -= 1;
                dep_ready_at[dep] = dep_ready_at[dep].max(finish);
            }
            try_start_heads!();
        }

        assert_eq!(
            completed,
            n,
            "deadlock: {} tasks never ran (circular deps or blocked stream head)",
            n - completed
        );

        ExecutionReport {
            makespan: finish_times.iter().copied().max().unwrap_or(0),
            busy,
            peak_mem,
            final_mem: mem_now,
            finish_times,
            start_times,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one_resource() -> (Resources, ResourceId) {
        let mut r = Resources::new();
        let c = r.add_compute("gpu0");
        (r, c)
    }

    #[test]
    fn serial_tasks_on_one_resource() {
        let (r, gpu) = one_resource();
        let mut sim = Simulation::new(r);
        sim.submit(SimTask::new(gpu, Work::Duration(100)));
        sim.submit(SimTask::new(gpu, Work::Duration(50)));
        let rep = sim.run();
        assert_eq!(rep.makespan, 150);
        assert_eq!(rep.busy[gpu.0], 150);
        assert_eq!(rep.utilization(gpu), 1.0);
    }

    #[test]
    fn independent_resources_overlap() {
        let mut r = Resources::new();
        let gpu = r.add_compute("gpu");
        let pcie = r.add_link("pcie", 1_000_000_000, 0); // 1 GB/s
        let mut sim = Simulation::new(r);
        sim.submit(SimTask::new(gpu, Work::Duration(1_000_000)));
        sim.submit(SimTask::new(pcie, Work::Bytes(1_000_000))); // 1 ms
        let rep = sim.run();
        assert_eq!(rep.makespan, 1_000_000); // fully overlapped
        assert!((rep.overlap_ratio() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn dependency_serializes_across_resources() {
        let mut r = Resources::new();
        let gpu = r.add_compute("gpu");
        let pcie = r.add_link("pcie", 1_000_000_000, 0);
        let mut sim = Simulation::new(r);
        let move_in = sim.submit(SimTask::new(pcie, Work::Bytes(2_000_000))); // 2 ms
        sim.submit(SimTask::new(gpu, Work::Duration(1_000_000)).with_deps([move_in]));
        let rep = sim.run();
        assert_eq!(rep.makespan, 3_000_000);
        assert_eq!(rep.start_times[1], 2_000_000);
        assert!(rep.idle_fraction(gpu) > 0.6); // GPU idle while waiting
    }

    #[test]
    fn stream_head_blocks_later_tasks_on_same_stream() {
        // CUDA-stream semantics: if the head of a stream waits on an event,
        // everything behind it waits too, even if independent.
        let mut r = Resources::new();
        let gpu = r.add_compute("gpu");
        let pcie = r.add_link("pcie", 1_000_000, 0); // 1 MB/s, slow
        let mut sim = Simulation::new(r);
        let slow_move = sim.submit(SimTask::new(pcie, Work::Bytes(1_000_000))); // 1 s
        sim.submit(SimTask::new(gpu, Work::Duration(10)).with_deps([slow_move]));
        sim.submit(SimTask::new(gpu, Work::Duration(10))); // independent but queued behind
        let rep = sim.run();
        assert_eq!(rep.start_times[2], 1_000_000_000 + 10);
    }

    #[test]
    fn transfer_duration_uses_bandwidth_and_latency() {
        let mut r = Resources::new();
        let link = r.add_link("ssd", 3_500_000_000, 100_000);
        let mut sim = Simulation::new(r);
        sim.submit(SimTask::new(link, Work::Bytes(3_500_000_000)));
        let rep = sim.run();
        assert_eq!(rep.makespan, 1_000_000_000 + 100_000);
    }

    #[test]
    fn memory_peak_tracking() {
        let mut r = Resources::new();
        let gpu = r.add_compute("gpu");
        let dom = r.add_mem_domain("gpu-mem", 1000);
        let mut sim = Simulation::new(r);
        // Acquire 600, release at end.
        let a = sim.submit(SimTask::new(gpu, Work::Duration(10)).with_mem(MemEffect {
            domain: dom,
            acquire: 600,
            release: 600,
        }));
        // Second acquires 300 while first still holds (no dep): but same
        // stream ⇒ serial ⇒ never concurrent. Add a second stream.
        let _ = a;
        let rep = sim.run();
        assert_eq!(rep.peak_mem[dom.0], 600);
        assert_eq!(rep.final_mem[dom.0], 0);
    }

    #[test]
    fn concurrent_memory_acquisition_peaks_add() {
        let mut r = Resources::new();
        let s1 = r.add_compute("s1");
        let s2 = r.add_compute("s2");
        let dom = r.add_mem_domain("mem", 0);
        let mut sim = Simulation::new(r);
        sim.submit(SimTask::new(s1, Work::Duration(100)).with_mem(MemEffect {
            domain: dom,
            acquire: 600,
            release: 600,
        }));
        sim.submit(SimTask::new(s2, Work::Duration(100)).with_mem(MemEffect {
            domain: dom,
            acquire: 500,
            release: 500,
        }));
        let rep = sim.run();
        assert_eq!(rep.peak_mem[dom.0], 1100);
    }

    #[test]
    fn unreleased_memory_shows_in_final() {
        let mut r = Resources::new();
        let gpu = r.add_compute("gpu");
        let dom = r.add_mem_domain("mem", 0);
        let mut sim = Simulation::new(r);
        sim.submit(SimTask::new(gpu, Work::Duration(1)).with_mem(MemEffect {
            domain: dom,
            acquire: 128,
            release: 0,
        }));
        let rep = sim.run();
        assert_eq!(rep.final_mem[dom.0], 128);
    }

    #[test]
    #[should_panic(expected = "dependency on not-yet-submitted")]
    fn forward_dependency_rejected() {
        let (r, gpu) = one_resource();
        let mut sim = Simulation::new(r);
        sim.submit(SimTask::new(gpu, Work::Duration(1)).with_deps([5]));
    }

    #[test]
    fn empty_schedule() {
        let (r, _gpu) = one_resource();
        let sim = Simulation::new(r);
        let rep = sim.run();
        assert_eq!(rep.makespan, 0);
        assert_eq!(rep.overlap_ratio(), 0.0);
    }

    #[test]
    fn diamond_dependency() {
        let mut r = Resources::new();
        let a = r.add_compute("a");
        let b = r.add_compute("b");
        let c = r.add_compute("c");
        let mut sim = Simulation::new(r);
        let root = sim.submit(SimTask::new(a, Work::Duration(10)));
        let left = sim.submit(SimTask::new(b, Work::Duration(20)).with_deps([root]));
        let right = sim.submit(SimTask::new(c, Work::Duration(30)).with_deps([root]));
        sim.submit(SimTask::new(a, Work::Duration(5)).with_deps([left, right]));
        let rep = sim.run();
        assert_eq!(rep.makespan, 10 + 30 + 5);
    }

    #[test]
    fn deterministic_tie_breaking() {
        // Two identical runs produce identical reports.
        let build = || {
            let mut r = Resources::new();
            let a = r.add_compute("a");
            let b = r.add_compute("b");
            let mut sim = Simulation::new(r);
            let t0 = sim.submit(SimTask::new(a, Work::Duration(10)));
            let t1 = sim.submit(SimTask::new(b, Work::Duration(10)));
            sim.submit(SimTask::new(a, Work::Duration(10)).with_deps([t0, t1]));
            sim.run()
        };
        assert_eq!(build(), build());
    }
}
