//! The discrete-event engine: resources with CUDA-stream (FIFO) semantics, a
//! dependency-aware task executor, and memory-domain peak tracking.
//!
//! # Execution model
//!
//! A [`SimTask`] is bound to exactly one [`ResourceId`] and may depend on any
//! set of earlier tasks. Execution follows stream semantics, matching how the
//! paper's Executor "inserts computations into the corresponding stream and
//! schedules them to the computation threads in the order of insertion":
//!
//! * tasks on the **same resource** start in submission order, back to back;
//! * a task additionally waits for **all its dependencies** to complete;
//! * task duration is either fixed ([`Work::Duration`]) or derived from the
//!   resource's bandwidth and latency ([`Work::Bytes`]).
//!
//! Memory domains track allocation high-water marks: each task can acquire
//! bytes at start and release bytes at completion, and the executor records
//! the peak per domain — how the paper's phase-2 OOM check is evaluated.

use serde::{Deserialize, Serialize};
use std::collections::BinaryHeap;

use crate::Ns;

/// Handle to a resource registered in [`Resources`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ResourceId(pub usize);

/// Handle to a memory domain (one per device whose peak usage matters).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct MemDomainId(pub usize);

/// The registry of resources and memory domains for one simulation.
#[derive(Debug, Clone, Default)]
pub struct Resources {
    names: Vec<String>,
    /// `Some((bandwidth_bytes_per_s, latency_ns))` for transfer resources;
    /// `None` for compute resources that only take fixed durations.
    links: Vec<Option<(u64, Ns)>>,
    mem_names: Vec<String>,
    mem_capacity: Vec<u64>,
}

impl Resources {
    pub fn new() -> Self {
        Self::default()
    }

    /// Resource names in id order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.names.iter().map(|s| s.as_str())
    }

    /// `(id, name)` pairs in id order — the one authoritative mapping for
    /// anything (trace export, metrics) that needs to key by resource id.
    pub fn iter(&self) -> impl Iterator<Item = (ResourceId, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (ResourceId(i), n.as_str()))
    }

    /// `(id, name)` pairs for memory domains, in id order.
    pub fn mem_domains(&self) -> impl Iterator<Item = (MemDomainId, &str)> {
        self.mem_names
            .iter()
            .enumerate()
            .map(|(i, n)| (MemDomainId(i), n.as_str()))
    }

    /// Register a compute resource (GPU stream, CPU worker pool, ...).
    pub fn add_compute(&mut self, name: impl Into<String>) -> ResourceId {
        self.names.push(name.into());
        self.links.push(None);
        ResourceId(self.names.len() - 1)
    }

    /// Register a transfer resource with a bandwidth/latency cost model
    /// (PCIe channel, NVLink fabric, NIC, SSD channel).
    pub fn add_link(
        &mut self,
        name: impl Into<String>,
        bandwidth: u64,
        latency_ns: Ns,
    ) -> ResourceId {
        assert!(bandwidth > 0);
        self.names.push(name.into());
        self.links.push(Some((bandwidth, latency_ns)));
        ResourceId(self.names.len() - 1)
    }

    /// Register a memory domain with a capacity (for OOM/peak reporting).
    pub fn add_mem_domain(&mut self, name: impl Into<String>, capacity: u64) -> MemDomainId {
        self.mem_names.push(name.into());
        self.mem_capacity.push(capacity);
        MemDomainId(self.mem_names.len() - 1)
    }

    pub fn name(&self, id: ResourceId) -> &str {
        &self.names[id.0]
    }

    pub fn mem_name(&self, id: MemDomainId) -> &str {
        &self.mem_names[id.0]
    }

    pub fn mem_capacity(&self, id: MemDomainId) -> u64 {
        self.mem_capacity[id.0]
    }

    pub fn num_resources(&self) -> usize {
        self.names.len()
    }

    pub fn num_mem_domains(&self) -> usize {
        self.mem_names.len()
    }

    fn duration_of(&self, resource: ResourceId, work: &Work) -> Ns {
        match (work, self.links[resource.0]) {
            (Work::Duration(ns), _) => *ns,
            (Work::Bytes(bytes), Some((bw, lat))) => {
                lat + angel_hw::link::bytes_over_bandwidth_ns(*bytes, bw)
            }
            (Work::Bytes(_), None) => {
                panic!(
                    "Work::Bytes submitted to compute resource '{}' (no bandwidth model)",
                    self.names[resource.0]
                )
            }
        }
    }
}

/// How much simulated work a task performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Work {
    /// Fixed duration in nanoseconds (computed by a cost model upstream).
    Duration(Ns),
    /// A transfer of this many bytes; duration comes from the resource's
    /// bandwidth/latency.
    Bytes(u64),
}

/// Identity of a logical object (page, tensor shard, optimizer state, ...)
/// that tasks read and write. The simulator itself never interprets these —
/// they exist so a static verifier can check that every pair of conflicting
/// accesses is ordered by the dependency/stream happens-before relation.
///
/// The `u64` payload is an opaque key chosen by whoever lowers the plan;
/// `angel_core::verify::objects` provides the tagged encodings used by the
/// engine and baselines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ObjectId(pub u64);

/// How a task touches an [`ObjectId`]. `Alloc` and `Free` conflict with
/// everything (including each other); two `Read`s never conflict.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessMode {
    Read,
    Write,
    /// First access in the object's lifetime; brings it into existence.
    Alloc,
    /// Last access in the object's lifetime; the object must not be touched
    /// afterwards.
    Free,
}

/// One declared access of a task to a logical object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Access {
    pub object: ObjectId,
    pub mode: AccessMode,
}

impl Access {
    pub fn read(object: ObjectId) -> Self {
        Self {
            object,
            mode: AccessMode::Read,
        }
    }
    pub fn write(object: ObjectId) -> Self {
        Self {
            object,
            mode: AccessMode::Write,
        }
    }
    pub fn alloc(object: ObjectId) -> Self {
        Self {
            object,
            mode: AccessMode::Alloc,
        }
    }
    pub fn free(object: ObjectId) -> Self {
        Self {
            object,
            mode: AccessMode::Free,
        }
    }
}

/// Memory side effect of a task on one domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemEffect {
    pub domain: MemDomainId,
    /// Bytes acquired when the task starts (e.g. destination buffer of a
    /// move-in).
    pub acquire: u64,
    /// Bytes released when the task completes (e.g. source of a move-out,
    /// activation freed by the last consumer).
    pub release: u64,
}

/// One node of the schedule DAG.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimTask {
    pub resource: ResourceId,
    pub work: Work,
    /// Indices of tasks (within the same submission) that must complete
    /// before this one starts.
    pub deps: Vec<usize>,
    pub mem: Vec<MemEffect>,
    /// Declared accesses to logical objects, for static race/lifetime
    /// verification. Purely observational: the executor ignores them.
    #[serde(default)]
    pub accesses: Vec<Access>,
    /// Free-form label, used for tracing and per-kind busy accounting.
    pub label: String,
}

impl SimTask {
    pub fn new(resource: ResourceId, work: Work) -> Self {
        Self {
            resource,
            work,
            deps: Vec::new(),
            mem: Vec::new(),
            accesses: Vec::new(),
            label: String::new(),
        }
    }

    /// A transfer of `bytes` on a link resource; duration comes from the
    /// link's bandwidth/latency model.
    pub fn transfer(resource: ResourceId, bytes: u64) -> Self {
        Self::new(resource, Work::Bytes(bytes))
    }

    /// A fixed-duration occupancy of a resource (duration computed by a
    /// cost model upstream).
    pub fn duration(resource: ResourceId, duration_ns: Ns) -> Self {
        Self::new(resource, Work::Duration(duration_ns))
    }

    pub fn with_deps(mut self, deps: impl IntoIterator<Item = usize>) -> Self {
        self.deps.extend(deps);
        self
    }

    pub fn with_mem(mut self, effect: MemEffect) -> Self {
        self.mem.push(effect);
        self
    }

    pub fn with_label(mut self, label: impl Into<String>) -> Self {
        self.label = label.into();
        self
    }

    pub fn with_access(mut self, access: Access) -> Self {
        self.accesses.push(access);
        self
    }

    pub fn with_accesses(mut self, accesses: impl IntoIterator<Item = Access>) -> Self {
        self.accesses.extend(accesses);
        self
    }
}

/// What happens to a resource when a [`FaultEvent`] fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultKind {
    /// The resource is unavailable for `duration` starting at the event
    /// time: tasks due to start inside the window are deferred past it, and
    /// in-flight tasks are paused (their finish extends by the overlap).
    Outage { duration: Ns },
    /// The resource dies at the event time and never comes back: tasks that
    /// would start at or after it never run, and in-flight tasks are killed
    /// without completing (their memory is not released).
    Permanent,
}

/// A scheduled resource fault — the simulator-side model of Section 3.1's
/// "in-frequent hardware failures" (SSD hiccups, NIC resets, node losses).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultEvent {
    pub resource: ResourceId,
    /// Simulation time at which the fault fires.
    pub at: Ns,
    pub kind: FaultKind,
}

/// Result of executing one schedule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExecutionReport {
    /// Completion time of the last task.
    pub makespan: Ns,
    /// Busy nanoseconds per resource, indexed by `ResourceId.0`.
    pub busy: Vec<Ns>,
    /// Peak bytes per memory domain, indexed by `MemDomainId.0`.
    pub peak_mem: Vec<u64>,
    /// Final bytes per memory domain (non-zero = leak, unless intentional).
    pub final_mem: Vec<u64>,
    /// Per-task completion times (same order as submission).
    pub finish_times: Vec<Ns>,
    /// Per-task start times.
    pub start_times: Vec<Ns>,
    /// Tasks that never completed because a permanent fault killed them or
    /// an unsatisfied dependency blocked them. Empty without faults.
    pub failed_tasks: Vec<usize>,
}

impl ExecutionReport {
    /// Utilization of a resource: busy ÷ makespan.
    pub fn utilization(&self, r: ResourceId) -> f64 {
        if self.makespan == 0 {
            0.0
        } else {
            self.busy[r.0] as f64 / self.makespan as f64
        }
    }

    /// The paper's idle fraction for a resource: 1 − utilization. Section 4.3
    /// observes "nearly 80% of the iteration time is idle" when SSD is used
    /// without the lock-free mechanism.
    pub fn idle_fraction(&self, r: ResourceId) -> f64 {
        1.0 - self.utilization(r)
    }

    /// Whether task `i` ran to completion. Killed-in-flight tasks have a
    /// start time but a zero finish time, so their duration is undefined —
    /// consumers (e.g. the trace export) must skip them.
    pub fn completed(&self, i: usize) -> bool {
        !self.failed_tasks.contains(&i)
    }

    /// Overlap ratio: Σ busy ÷ makespan — how many resources were kept busy
    /// on average. 1.0 = perfectly serial, N = N-way overlap.
    pub fn overlap_ratio(&self) -> f64 {
        if self.makespan == 0 {
            0.0
        } else {
            self.busy.iter().sum::<Ns>() as f64 / self.makespan as f64
        }
    }
}

/// A submitted schedule ready to execute.
#[derive(Debug, Clone)]
pub struct Simulation {
    resources: Resources,
    tasks: Vec<SimTask>,
    faults: Vec<FaultEvent>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Pending {
    finish: Ns,
    task: usize,
}

// Min-heap ordering by finish time (then task index for determinism).
impl Ord for Pending {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other
            .finish
            .cmp(&self.finish)
            .then(other.task.cmp(&self.task))
    }
}

impl PartialOrd for Pending {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Simulation {
    pub fn new(resources: Resources) -> Self {
        Self {
            resources,
            tasks: Vec::new(),
            faults: Vec::new(),
        }
    }

    pub fn resources(&self) -> &Resources {
        &self.resources
    }

    /// Schedule a resource fault for the next [`Self::run`].
    pub fn inject_fault(&mut self, fault: FaultEvent) {
        assert!(
            fault.resource.0 < self.resources.num_resources(),
            "unknown resource"
        );
        self.faults.push(fault);
    }

    /// Faults scheduled for the next [`Self::run`] — callers that verify
    /// executed graphs (e.g. debug-build plan verification) use this to
    /// skip coverage assertions that only hold on fault-free runs.
    pub fn faults(&self) -> &[FaultEvent] {
        &self.faults
    }

    /// Submit a task; returns its index for use in later `deps`.
    pub fn submit(&mut self, task: SimTask) -> usize {
        for &d in &task.deps {
            assert!(
                d < self.tasks.len(),
                "dependency on not-yet-submitted task {d}"
            );
        }
        assert!(
            task.resource.0 < self.resources.num_resources(),
            "unknown resource"
        );
        self.tasks.push(task);
        self.tasks.len() - 1
    }

    pub fn num_tasks(&self) -> usize {
        self.tasks.len()
    }

    /// Reserve room for `additional` more tasks — lowerings know their
    /// graph size up front, so the task vector need not grow geometrically.
    pub fn reserve_tasks(&mut self, additional: usize) {
        self.tasks.reserve(additional);
    }

    /// Submitted tasks in submission order.
    pub fn tasks(&self) -> impl Iterator<Item = &SimTask> {
        self.tasks.iter()
    }

    /// Attach access annotations to an already-submitted task, for lowering
    /// code that only learns object identities after submission.
    pub fn annotate(&mut self, task: usize, accesses: impl IntoIterator<Item = Access>) {
        self.tasks[task].accesses.extend(accesses);
    }

    /// Execute the schedule to completion and report.
    ///
    /// The executor is an event-driven list scheduler: it maintains, per
    /// resource, the submission-ordered queue of its tasks; the head of a
    /// queue starts as soon as (a) the resource is free and (b) all its
    /// dependencies completed. This mirrors CUDA stream semantics: a stream
    /// blocks on its head task's events, it never reorders.
    pub fn run(&self) -> ExecutionReport {
        let n = self.tasks.len();
        let nr = self.resources.num_resources();
        let nm = self.resources.num_mem_domains();

        // Per-resource FIFO queues of task indices.
        let mut queues: Vec<std::collections::VecDeque<usize>> =
            vec![std::collections::VecDeque::new(); nr];
        for (i, t) in self.tasks.iter().enumerate() {
            queues[t.resource.0].push_back(i);
        }

        let mut deps_left: Vec<usize> = self.tasks.iter().map(|t| t.deps.len()).collect();
        // Reverse adjacency: who waits on me.
        let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, t) in self.tasks.iter().enumerate() {
            for &d in &t.deps {
                dependents[d].push(i);
            }
        }

        let mut resource_free_at: Vec<Ns> = vec![0; nr];
        let mut busy: Vec<Ns> = vec![0; nr];
        let mut mem_now: Vec<u64> = vec![0; nm];
        let mut peak_mem: Vec<u64> = vec![0; nm];
        let mut start_times: Vec<Ns> = vec![0; n];
        let mut finish_times: Vec<Ns> = vec![0; n];
        let mut done: Vec<bool> = vec![false; n];
        let mut started: Vec<bool> = vec![false; n];
        let mut dep_ready_at: Vec<Ns> = vec![0; n];

        // Fault preprocessing: per-resource sorted outage windows [start,
        // end) and the earliest permanent-death time.
        let mut outages: Vec<Vec<(Ns, Ns)>> = vec![Vec::new(); nr];
        let mut dead_at: Vec<Option<Ns>> = vec![None; nr];
        for f in &self.faults {
            match f.kind {
                FaultKind::Outage { duration } => {
                    outages[f.resource.0].push((f.at, f.at.saturating_add(duration)));
                }
                FaultKind::Permanent => {
                    let d = dead_at[f.resource.0].get_or_insert(f.at);
                    *d = (*d).min(f.at);
                }
            }
        }
        // Merge overlapping windows so a paused task is not charged twice
        // for the same downtime.
        for w in &mut outages {
            w.sort_unstable();
            let mut merged: Vec<(Ns, Ns)> = Vec::with_capacity(w.len());
            for &(s, e) in w.iter() {
                match merged.last_mut() {
                    Some(last) if s <= last.1 => last.1 = last.1.max(e),
                    _ => merged.push((s, e)),
                }
            }
            *w = merged;
        }

        let mut heap: BinaryHeap<Pending> = BinaryHeap::new();
        let mut now: Ns = 0;
        let mut completed = 0usize;

        // Sentinel task index for clock-only wake events (outage-deferred
        // starts have no completion event at the deferred time).
        const WAKE: usize = usize::MAX;

        // Try to start the head task of each resource queue. A head only
        // starts when the clock has reached its start time — memory is
        // acquired at the *actual* start, never at scheduling time, so
        // same-timestamp releases (drained in batch below) are always
        // visible to it. A head whose start lies in the future is left
        // queued; its start time is either a completion event (resource
        // free / dependency ready) or an explicitly pushed WAKE event
        // (outage end), so it is re-examined exactly then.
        macro_rules! try_start_heads {
            () => {
                for r in 0..nr {
                    while let Some(&head) = queues[r].front() {
                        if started[head] {
                            queues[r].pop_front();
                            continue;
                        }
                        if deps_left[head] > 0 {
                            break; // stream blocks on its head
                        }
                        let mut start = now.max(resource_free_at[r]).max(dep_ready_at[head]);
                        // Dead resources never free up; fail below, don't
                        // wait forever.
                        if start > now && resource_free_at[r] != Ns::MAX {
                            break; // a completion event at `start` retries
                        }
                        let task = &self.tasks[head];
                        let dur = self.resources.duration_of(task.resource, &task.work);
                        // Saturating: a stream behind a dead resource has
                        // `resource_free_at == Ns::MAX` and fails the death
                        // check below instead of overflowing here.
                        let mut finish = start.saturating_add(dur);
                        // Outages defer a start inside a window past it and
                        // pause an in-flight task for the overlap. Windows
                        // are sorted, and `finish` only grows, so one pass
                        // catches windows reached because of earlier stalls.
                        for &(ws, we) in &outages[r] {
                            if we <= start {
                                continue;
                            }
                            if ws <= start {
                                finish += we - start;
                                start = we;
                            } else if ws < finish {
                                finish += we - ws;
                            }
                        }
                        if start > now {
                            // Outage deferral: no completion event lands at
                            // the window end, so schedule an explicit wake
                            // and re-examine this head then.
                            heap.push(Pending {
                                finish: start,
                                task: WAKE,
                            });
                            break;
                        }
                        if let Some(d) = dead_at[r] {
                            if start >= d {
                                // The resource is gone before the task could
                                // start: it never runs, and neither can
                                // anything behind it in this stream — but
                                // marking it started pops it so the stream
                                // drains into failed_tasks too.
                                started[head] = true;
                                queues[r].pop_front();
                                continue;
                            }
                            if finish > d {
                                // Killed in flight at the moment of death:
                                // acquired memory is never released (the
                                // device took it down with it).
                                started[head] = true;
                                start_times[head] = start;
                                busy[r] += d - start;
                                resource_free_at[r] = Ns::MAX;
                                for e in &task.mem {
                                    mem_now[e.domain.0] += e.acquire;
                                    peak_mem[e.domain.0] =
                                        peak_mem[e.domain.0].max(mem_now[e.domain.0]);
                                }
                                queues[r].pop_front();
                                continue;
                            }
                        }
                        started[head] = true;
                        start_times[head] = start;
                        finish_times[head] = finish;
                        resource_free_at[r] = finish;
                        busy[r] += dur;
                        // Acquire memory at start.
                        for e in &task.mem {
                            mem_now[e.domain.0] += e.acquire;
                            peak_mem[e.domain.0] = peak_mem[e.domain.0].max(mem_now[e.domain.0]);
                        }
                        heap.push(Pending { finish, task: head });
                        queues[r].pop_front();
                    }
                }
            };
        }

        try_start_heads!();
        while let Some(Pending { finish, task }) = heap.pop() {
            now = finish;
            // Drain every completion at this timestamp before starting new
            // tasks, so all simultaneous releases and dependency resolutions
            // are visible to the next start decision. Popping one at a time
            // overstated `peak_mem`: a task could start at time t against a
            // memory level that a same-t completion was about to release.
            let mut batch = vec![task];
            while heap.peek().is_some_and(|p| p.finish == now) {
                let Some(p) = heap.pop() else { break };
                batch.push(p.task);
            }
            for &task in &batch {
                if task == WAKE {
                    continue; // clock-only event, nothing completed
                }
                done[task] = true;
                completed += 1;
                // Release memory at completion.
                for e in &self.tasks[task].mem {
                    let m = &mut mem_now[e.domain.0];
                    assert!(*m >= e.release, "memory underflow in domain {}", e.domain.0);
                    *m -= e.release;
                }
                for &dep in &dependents[task] {
                    deps_left[dep] -= 1;
                    dep_ready_at[dep] = dep_ready_at[dep].max(now);
                }
            }
            try_start_heads!();
        }

        // Without faults an incomplete run is a schedule bug; with faults it
        // is the expected outcome, reported in `failed_tasks`.
        if self.faults.is_empty() {
            assert_eq!(
                completed,
                n,
                "deadlock: {} tasks never ran (circular deps or blocked stream head)",
                n - completed
            );
        }
        let failed_tasks: Vec<usize> = (0..n).filter(|&i| !done[i]).collect();

        ExecutionReport {
            makespan: finish_times.iter().copied().max().unwrap_or(0),
            busy,
            peak_mem,
            final_mem: mem_now,
            finish_times,
            start_times,
            failed_tasks,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one_resource() -> (Resources, ResourceId) {
        let mut r = Resources::new();
        let c = r.add_compute("gpu0");
        (r, c)
    }

    #[test]
    fn serial_tasks_on_one_resource() {
        let (r, gpu) = one_resource();
        let mut sim = Simulation::new(r);
        sim.submit(SimTask::new(gpu, Work::Duration(100)));
        sim.submit(SimTask::new(gpu, Work::Duration(50)));
        let rep = sim.run();
        assert_eq!(rep.makespan, 150);
        assert_eq!(rep.busy[gpu.0], 150);
        assert_eq!(rep.utilization(gpu), 1.0);
    }

    #[test]
    fn independent_resources_overlap() {
        let mut r = Resources::new();
        let gpu = r.add_compute("gpu");
        let pcie = r.add_link("pcie", 1_000_000_000, 0); // 1 GB/s
        let mut sim = Simulation::new(r);
        sim.submit(SimTask::new(gpu, Work::Duration(1_000_000)));
        sim.submit(SimTask::new(pcie, Work::Bytes(1_000_000))); // 1 ms
        let rep = sim.run();
        assert_eq!(rep.makespan, 1_000_000); // fully overlapped
        assert!((rep.overlap_ratio() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn dependency_serializes_across_resources() {
        let mut r = Resources::new();
        let gpu = r.add_compute("gpu");
        let pcie = r.add_link("pcie", 1_000_000_000, 0);
        let mut sim = Simulation::new(r);
        let move_in = sim.submit(SimTask::new(pcie, Work::Bytes(2_000_000))); // 2 ms
        sim.submit(SimTask::new(gpu, Work::Duration(1_000_000)).with_deps([move_in]));
        let rep = sim.run();
        assert_eq!(rep.makespan, 3_000_000);
        assert_eq!(rep.start_times[1], 2_000_000);
        assert!(rep.idle_fraction(gpu) > 0.6); // GPU idle while waiting
    }

    #[test]
    fn stream_head_blocks_later_tasks_on_same_stream() {
        // CUDA-stream semantics: if the head of a stream waits on an event,
        // everything behind it waits too, even if independent.
        let mut r = Resources::new();
        let gpu = r.add_compute("gpu");
        let pcie = r.add_link("pcie", 1_000_000, 0); // 1 MB/s, slow
        let mut sim = Simulation::new(r);
        let slow_move = sim.submit(SimTask::new(pcie, Work::Bytes(1_000_000))); // 1 s
        sim.submit(SimTask::new(gpu, Work::Duration(10)).with_deps([slow_move]));
        sim.submit(SimTask::new(gpu, Work::Duration(10))); // independent but queued behind
        let rep = sim.run();
        assert_eq!(rep.start_times[2], 1_000_000_000 + 10);
    }

    #[test]
    fn transfer_duration_uses_bandwidth_and_latency() {
        let mut r = Resources::new();
        let link = r.add_link("ssd", 3_500_000_000, 100_000);
        let mut sim = Simulation::new(r);
        sim.submit(SimTask::new(link, Work::Bytes(3_500_000_000)));
        let rep = sim.run();
        assert_eq!(rep.makespan, 1_000_000_000 + 100_000);
    }

    #[test]
    fn memory_peak_tracking() {
        let mut r = Resources::new();
        let gpu = r.add_compute("gpu");
        let dom = r.add_mem_domain("gpu-mem", 1000);
        let mut sim = Simulation::new(r);
        // Acquire 600, release at end.
        let a = sim.submit(SimTask::new(gpu, Work::Duration(10)).with_mem(MemEffect {
            domain: dom,
            acquire: 600,
            release: 600,
        }));
        // Second acquires 300 while first still holds (no dep): but same
        // stream ⇒ serial ⇒ never concurrent. Add a second stream.
        let _ = a;
        let rep = sim.run();
        assert_eq!(rep.peak_mem[dom.0], 600);
        assert_eq!(rep.final_mem[dom.0], 0);
    }

    #[test]
    fn concurrent_memory_acquisition_peaks_add() {
        let mut r = Resources::new();
        let s1 = r.add_compute("s1");
        let s2 = r.add_compute("s2");
        let dom = r.add_mem_domain("mem", 0);
        let mut sim = Simulation::new(r);
        sim.submit(SimTask::new(s1, Work::Duration(100)).with_mem(MemEffect {
            domain: dom,
            acquire: 600,
            release: 600,
        }));
        sim.submit(SimTask::new(s2, Work::Duration(100)).with_mem(MemEffect {
            domain: dom,
            acquire: 500,
            release: 500,
        }));
        let rep = sim.run();
        assert_eq!(rep.peak_mem[dom.0], 1100);
    }

    #[test]
    fn unreleased_memory_shows_in_final() {
        let mut r = Resources::new();
        let gpu = r.add_compute("gpu");
        let dom = r.add_mem_domain("mem", 0);
        let mut sim = Simulation::new(r);
        sim.submit(SimTask::new(gpu, Work::Duration(1)).with_mem(MemEffect {
            domain: dom,
            acquire: 128,
            release: 0,
        }));
        let rep = sim.run();
        assert_eq!(rep.final_mem[dom.0], 128);
    }

    #[test]
    #[should_panic(expected = "dependency on not-yet-submitted")]
    fn forward_dependency_rejected() {
        let (r, gpu) = one_resource();
        let mut sim = Simulation::new(r);
        sim.submit(SimTask::new(gpu, Work::Duration(1)).with_deps([5]));
    }

    #[test]
    fn empty_schedule() {
        let (r, _gpu) = one_resource();
        let sim = Simulation::new(r);
        let rep = sim.run();
        assert_eq!(rep.makespan, 0);
        assert_eq!(rep.overlap_ratio(), 0.0);
    }

    #[test]
    fn diamond_dependency() {
        let mut r = Resources::new();
        let a = r.add_compute("a");
        let b = r.add_compute("b");
        let c = r.add_compute("c");
        let mut sim = Simulation::new(r);
        let root = sim.submit(SimTask::new(a, Work::Duration(10)));
        let left = sim.submit(SimTask::new(b, Work::Duration(20)).with_deps([root]));
        let right = sim.submit(SimTask::new(c, Work::Duration(30)).with_deps([root]));
        sim.submit(SimTask::new(a, Work::Duration(5)).with_deps([left, right]));
        let rep = sim.run();
        assert_eq!(rep.makespan, 10 + 30 + 5);
    }

    #[test]
    fn same_timestamp_release_seen_before_new_start() {
        // Regression: completions and starts at the same timestamp. Task C
        // (s2) finishes at t=100, as does A (s1, holding 600 bytes). B (s2,
        // acquiring 500) starts at t=100. Before the batch-drain fix the
        // executor popped one completion (C, the lower task index), started
        // B against A's still-unreleased 600, and reported peak 1100; the
        // true peak is 600 — A's release at t=100 precedes B's start.
        let mut r = Resources::new();
        let s1 = r.add_compute("s1");
        let s2 = r.add_compute("s2");
        let dom = r.add_mem_domain("mem", 0);
        let mut sim = Simulation::new(r);
        sim.submit(SimTask::new(s2, Work::Duration(100))); // C: task 0
        sim.submit(SimTask::new(s1, Work::Duration(100)).with_mem(MemEffect {
            domain: dom,
            acquire: 600,
            release: 600,
        })); // A: task 1
        sim.submit(SimTask::new(s2, Work::Duration(50)).with_mem(MemEffect {
            domain: dom,
            acquire: 500,
            release: 500,
        })); // B: task 2
        let rep = sim.run();
        assert_eq!(rep.start_times[2], 100);
        assert_eq!(
            rep.peak_mem[dom.0], 600,
            "same-timestamp release must land before the new start"
        );
        assert_eq!(rep.final_mem[dom.0], 0);
    }

    #[test]
    fn outage_defers_task_starting_inside_window() {
        let (r, gpu) = one_resource();
        let mut sim = Simulation::new(r);
        sim.submit(SimTask::new(gpu, Work::Duration(100)));
        sim.submit(SimTask::new(gpu, Work::Duration(50)));
        // Resource down [100, 400): the second task defers to t=400.
        sim.inject_fault(FaultEvent {
            resource: gpu,
            at: 100,
            kind: FaultKind::Outage { duration: 300 },
        });
        let rep = sim.run();
        assert_eq!(rep.start_times[1], 400);
        assert_eq!(rep.makespan, 450);
        assert!(rep.failed_tasks.is_empty());
    }

    #[test]
    fn outage_pauses_in_flight_task() {
        let (r, gpu) = one_resource();
        let mut sim = Simulation::new(r);
        sim.submit(SimTask::new(gpu, Work::Duration(100)));
        // Down [30, 70): the task is paused for 40 ns mid-flight.
        sim.inject_fault(FaultEvent {
            resource: gpu,
            at: 30,
            kind: FaultKind::Outage { duration: 40 },
        });
        let rep = sim.run();
        assert_eq!(rep.finish_times[0], 140);
    }

    #[test]
    fn overlapping_outages_merge() {
        let (r, gpu) = one_resource();
        let mut sim = Simulation::new(r);
        sim.submit(SimTask::new(gpu, Work::Duration(100)));
        // [10, 50) and [30, 80) overlap: union downtime is 70, not 90.
        for (at, duration) in [(10, 40), (30, 50)] {
            sim.inject_fault(FaultEvent {
                resource: gpu,
                at,
                kind: FaultKind::Outage { duration },
            });
        }
        let rep = sim.run();
        assert_eq!(rep.finish_times[0], 170);
    }

    #[test]
    fn outage_chain_catches_windows_reached_by_stall() {
        let (r, gpu) = one_resource();
        let mut sim = Simulation::new(r);
        sim.submit(SimTask::new(gpu, Work::Duration(100)));
        // The second window [120, 150) only overlaps because the first
        // stall pushed the finish from 100 past 120.
        for (at, duration) in [(50, 60), (120, 30)] {
            sim.inject_fault(FaultEvent {
                resource: gpu,
                at,
                kind: FaultKind::Outage { duration },
            });
        }
        let rep = sim.run();
        assert_eq!(rep.finish_times[0], 100 + 60 + 30);
    }

    #[test]
    fn permanent_fault_kills_in_flight_and_blocks_stream() {
        let mut r = Resources::new();
        let gpu = r.add_compute("gpu");
        let other = r.add_compute("other");
        let dom = r.add_mem_domain("mem", 0);
        let mut sim = Simulation::new(r);
        let t0 = sim.submit(SimTask::new(gpu, Work::Duration(100)).with_mem(MemEffect {
            domain: dom,
            acquire: 64,
            release: 64,
        }));
        let t1 = sim.submit(SimTask::new(gpu, Work::Duration(100)));
        // Independent work on a live resource, ahead of the blocked task in
        // its stream, still completes.
        let t2 = sim.submit(SimTask::new(other, Work::Duration(10)));
        // Depends on the killed task: can never run, even on a live resource.
        let t3 = sim.submit(SimTask::new(other, Work::Duration(10)).with_deps([t0]));
        sim.inject_fault(FaultEvent {
            resource: gpu,
            at: 50,
            kind: FaultKind::Permanent,
        });
        let rep = sim.run();
        assert_eq!(rep.failed_tasks, vec![t0, t1, t3]);
        // The killed task never released what it had acquired.
        assert_eq!(rep.final_mem[dom.0], 64);
        assert_eq!(rep.finish_times[t2], 10);
        // Busy time accrues only until the death.
        assert_eq!(rep.busy[gpu.0], 50);
    }

    #[test]
    fn permanent_fault_before_start_fails_whole_stream() {
        let (r, gpu) = one_resource();
        let mut sim = Simulation::new(r);
        sim.submit(SimTask::new(gpu, Work::Duration(10)));
        sim.submit(SimTask::new(gpu, Work::Duration(10)));
        sim.inject_fault(FaultEvent {
            resource: gpu,
            at: 0,
            kind: FaultKind::Permanent,
        });
        let rep = sim.run();
        assert_eq!(rep.failed_tasks, vec![0, 1]);
        assert_eq!(rep.makespan, 0);
    }

    #[test]
    fn fault_free_run_reports_no_failures() {
        let (r, gpu) = one_resource();
        let mut sim = Simulation::new(r);
        sim.submit(SimTask::new(gpu, Work::Duration(10)));
        assert!(sim.run().failed_tasks.is_empty());
    }

    #[test]
    fn access_annotations_are_observational() {
        let (r, gpu) = one_resource();
        let mut sim = Simulation::new(r);
        let obj = ObjectId(42);
        let t = sim.submit(
            SimTask::new(gpu, Work::Duration(10))
                .with_access(Access::write(obj))
                .with_accesses([Access::read(ObjectId(7))]),
        );
        sim.annotate(t, [Access::free(obj)]);
        let task = sim.tasks().next().expect("one task");
        assert_eq!(
            task.accesses,
            vec![
                Access::write(obj),
                Access::read(ObjectId(7)),
                Access::free(obj)
            ]
        );
        // Executor behaviour is unchanged by annotations.
        assert_eq!(sim.run().makespan, 10);
    }

    #[test]
    fn deterministic_tie_breaking() {
        // Two identical runs produce identical reports.
        let build = || {
            let mut r = Resources::new();
            let a = r.add_compute("a");
            let b = r.add_compute("b");
            let mut sim = Simulation::new(r);
            let t0 = sim.submit(SimTask::new(a, Work::Duration(10)));
            let t1 = sim.submit(SimTask::new(b, Work::Duration(10)));
            sim.submit(SimTask::new(a, Work::Duration(10)).with_deps([t0, t1]));
            sim.run()
        };
        assert_eq!(build(), build());
    }
}
