//! Analytic cost models for the NCCL collectives Angel-PTM's Communicator
//! schedules: all-gather, reduce-scatter, all-reduce (ring algorithms) and
//! the MoE all-to-all.
//!
//! Ring collectives on `n` ranks move `(n-1)/n` of the full buffer through
//! every rank's slowest link, in `n-1` latency-bound steps. For hierarchical
//! topologies (NVLink inside a server, NICs between servers) the bottleneck
//! is the inter-server hop whenever more than one server participates; this
//! is why the paper reports lower scalability for all-to-all-heavy MoE
//! models (Figure 9) than for GPT (Figure 8).

use crate::Ns;
use angel_hw::link::bytes_over_bandwidth_ns;
use angel_hw::{ClusterSpec, Link};
use serde::{Deserialize, Serialize};

/// The collective operations of the paper's Communicator ("These primitives
/// include collective operations such as AllReduce, AllGather, and
/// ReduceScatter").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Collective {
    AllGather,
    ReduceScatter,
    AllReduce,
    AllToAll,
}

/// Bytes that cross each rank's link for a collective over a buffer of
/// `full_bytes` (the *gathered* size) on `n` ranks.
pub fn wire_bytes_per_rank(op: Collective, full_bytes: u64, n: u64) -> u64 {
    if n <= 1 {
        return 0;
    }
    match op {
        // Each rank receives the other n-1 shards of size full/n.
        Collective::AllGather | Collective::ReduceScatter => full_bytes * (n - 1) / n,
        // Ring all-reduce = reduce-scatter + all-gather.
        Collective::AllReduce => 2 * full_bytes * (n - 1) / n,
        // Uniform all-to-all of a per-rank buffer of `full_bytes`:
        // (n-1)/n of it leaves the rank (and as much arrives).
        Collective::AllToAll => full_bytes * (n - 1) / n,
    }
}

/// Time for a collective over `full_bytes` on `n` ranks connected by `link`,
/// with `n-1` (or `2(n-1)` for all-reduce) latency-bound ring steps.
pub fn collective_time_ns(op: Collective, full_bytes: u64, n: u64, link: &Link) -> Ns {
    if n <= 1 {
        return 0;
    }
    let wire = wire_bytes_per_rank(op, full_bytes, n);
    let steps = match op {
        Collective::AllReduce => 2 * (n - 1),
        _ => n - 1,
    };
    steps * link.latency_ns + bytes_over_bandwidth_ns(wire, link.bandwidth)
}

/// Time for a collective over a hierarchical cluster: intra-server ranks use
/// NVLink; once multiple servers participate the inter-server NIC is the
/// bottleneck link (its per-server aggregate bandwidth is shared by all the
/// server's GPUs).
pub fn hierarchical_collective_time_ns(
    op: Collective,
    full_bytes: u64,
    cluster: &ClusterSpec,
    num_gpus: u64,
) -> Ns {
    let per_server = cluster.server.num_gpus() as u64;
    if num_gpus <= per_server {
        return collective_time_ns(op, full_bytes, num_gpus, &cluster.server.nvlink);
    }
    let servers = num_gpus.div_ceil(per_server);
    // Phase 1: intra-server collective over NVLink.
    let intra = collective_time_ns(op, full_bytes, per_server, &cluster.server.nvlink);
    // Phase 2: inter-server collective over the NICs. All GPUs of a server
    // share the server's aggregate NIC bandwidth.
    let shared_nic = Link::new(
        cluster.nic.class,
        (cluster.nic.bandwidth / per_server).max(1),
        cluster.nic.latency_ns,
    );
    let inter = collective_time_ns(op, full_bytes, servers, &shared_nic);
    intra + inter
}

#[cfg(test)]
mod tests {
    use super::*;
    use angel_hw::LinkClass;

    fn nvlink() -> Link {
        Link::new(LinkClass::NvLink, 200_000_000_000, 5_000)
    }

    #[test]
    fn single_rank_is_free() {
        for op in [
            Collective::AllGather,
            Collective::ReduceScatter,
            Collective::AllReduce,
            Collective::AllToAll,
        ] {
            assert_eq!(collective_time_ns(op, 1 << 30, 1, &nvlink()), 0);
            assert_eq!(wire_bytes_per_rank(op, 1 << 30, 1), 0);
        }
    }

    #[test]
    fn all_reduce_is_twice_reduce_scatter() {
        let b = 1u64 << 30;
        let rs = wire_bytes_per_rank(Collective::ReduceScatter, b, 8);
        let ar = wire_bytes_per_rank(Collective::AllReduce, b, 8);
        assert_eq!(ar, 2 * rs);
    }

    #[test]
    fn wire_bytes_approach_full_buffer() {
        let b = 1u64 << 30;
        let w2 = wire_bytes_per_rank(Collective::AllGather, b, 2);
        let w64 = wire_bytes_per_rank(Collective::AllGather, b, 64);
        assert_eq!(w2, b / 2);
        assert!(w64 > b * 9 / 10 && w64 < b);
    }

    #[test]
    fn time_grows_sublinearly_with_ranks() {
        // The per-rank wire volume saturates at the full buffer size, so a
        // bigger ring costs only more latency steps — the property behind
        // ZeRO's scalability.
        let b = 1u64 << 30;
        let t8 = collective_time_ns(Collective::AllGather, b, 8, &nvlink());
        let t64 = collective_time_ns(Collective::AllGather, b, 64, &nvlink());
        assert!(t64 < t8 * 2);
    }

    #[test]
    fn hierarchical_uses_nvlink_within_server() {
        let cluster = ClusterSpec::a100_tencent(4);
        let b = 1u64 << 28;
        let t_intra = hierarchical_collective_time_ns(Collective::AllGather, b, &cluster, 8);
        let t_flat = collective_time_ns(Collective::AllGather, b, 8, &cluster.server.nvlink);
        assert_eq!(t_intra, t_flat);
    }

    #[test]
    fn crossing_servers_is_much_slower() {
        let cluster = ClusterSpec::a100_tencent(4);
        let b = 1u64 << 28;
        let t8 = hierarchical_collective_time_ns(Collective::AllGather, b, &cluster, 8);
        let t32 = hierarchical_collective_time_ns(Collective::AllGather, b, &cluster, 32);
        // NIC bandwidth per GPU (200/8 = 25 GB/s) ≪ NVLink (200 GB/s).
        assert!(t32 > 3 * t8, "t8={t8} t32={t32}");
    }

    #[test]
    fn all_to_all_volume_matches_moe_model() {
        // The collective model and angel-model's MoE byte formula must agree.
        let cfg = angel_model::TransformerConfig::t5_moe_1_2t();
        let b = 4u64;
        let n = 16u64;
        let per_gpu_buffer = b * cfg.seq_len as u64 * cfg.d_model as u64 * angel_model::dtype::HALF;
        let from_model = angel_model::moe::all_to_all_bytes_per_gpu(&cfg, b, n);
        // dispatch + combine = 2 one-way all-to-alls.
        let from_collective = 2 * wire_bytes_per_rank(Collective::AllToAll, per_gpu_buffer, n);
        assert_eq!(from_model, from_collective);
    }
}
