//! Analytic cost models for the NCCL collectives Angel-PTM's Communicator
//! schedules: all-gather, reduce-scatter, all-reduce (ring algorithms) and
//! the MoE all-to-all.
//!
//! Ring collectives on `n` ranks move `(n-1)/n` of the full buffer through
//! every rank's slowest link, in `n-1` latency-bound steps. For hierarchical
//! topologies (NVLink inside a server, NICs between servers) the bottleneck
//! is the inter-server hop whenever more than one server participates; this
//! is why the paper reports lower scalability for all-to-all-heavy MoE
//! models (Figure 9) than for GPT (Figure 8).

use crate::Ns;
use angel_hw::{ClusterSpec, Link};
use serde::{Deserialize, Serialize};

/// The collective operations of the paper's Communicator ("These primitives
/// include collective operations such as AllReduce, AllGather, and
/// ReduceScatter").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Collective {
    AllGather,
    ReduceScatter,
    AllReduce,
    AllToAll,
}

/// Bytes that cross each rank's link for a collective over a buffer of
/// `full_bytes` (the *gathered* size) on `n` ranks.
pub fn wire_bytes_per_rank(op: Collective, full_bytes: u64, n: u64) -> u64 {
    if n <= 1 {
        return 0;
    }
    match op {
        // Each rank receives the other n-1 shards of size full/n.
        Collective::AllGather | Collective::ReduceScatter => full_bytes * (n - 1) / n,
        // Ring all-reduce = reduce-scatter + all-gather.
        Collective::AllReduce => 2 * full_bytes * (n - 1) / n,
        // Uniform all-to-all of a per-rank buffer of `full_bytes`:
        // (n-1)/n of it leaves the rank (and as much arrives).
        Collective::AllToAll => full_bytes * (n - 1) / n,
    }
}

/// Latency-bound steps of the ring algorithm: `n-1`, doubled for all-reduce
/// (reduce-scatter + all-gather).
fn ring_steps(op: Collective, n: u64) -> u64 {
    match op {
        Collective::AllReduce => 2 * (n - 1),
        _ => n - 1,
    }
}

/// Time for a collective over `full_bytes` on `n` ranks connected by `link`,
/// with `n-1` (or `2(n-1)` for all-reduce) latency-bound ring steps.
pub fn collective_time_ns(op: Collective, full_bytes: u64, n: u64, link: &Link) -> Ns {
    if n <= 1 {
        return 0;
    }
    let wire = wire_bytes_per_rank(op, full_bytes, n);
    link.staged_transfer_ns(wire, ring_steps(op, n))
}

/// Time for a collective on a *tree* algorithm: `⌈log₂ n⌉` latency-bound
/// steps (doubled for all-reduce) instead of the ring's `n-1`, with the same
/// bandwidth term — the pipelined binary tree streams the identical per-rank
/// wire volume. This is what NCCL switches to across node boundaries, and
/// why large-fleet collectives are not latency-dominated. All-to-all has no
/// tree formulation (every pair exchanges distinct data) and keeps its
/// `n-1` personalized-exchange steps.
pub fn tree_collective_time_ns(op: Collective, full_bytes: u64, n: u64, link: &Link) -> Ns {
    if n <= 1 {
        return 0;
    }
    let wire = wire_bytes_per_rank(op, full_bytes, n);
    let depth = ((n - 1).ilog2() + 1) as u64; // ⌈log₂ n⌉ for n ≥ 2
    let steps = match op {
        Collective::AllReduce => 2 * depth,
        Collective::AllToAll => n - 1,
        _ => depth,
    };
    link.staged_transfer_ns(wire, steps)
}

/// The generalized two-level cost model a mesh axis prices through: an
/// intra-node **ring** over `intra` among the `ranks_per_node` co-located
/// group members, then an inter-node **tree** over `inter` among
/// `num_nodes`. With one node this degenerates to the flat ring — exactly,
/// which is what keeps every single-server result byte-identical to the
/// pre-mesh model.
pub fn hierarchical_collective_ns(
    op: Collective,
    full_bytes: u64,
    intra: &Link,
    inter: &Link,
    ranks_per_node: u64,
    num_nodes: u64,
) -> Ns {
    if num_nodes <= 1 {
        return collective_time_ns(op, full_bytes, ranks_per_node, intra);
    }
    collective_time_ns(op, full_bytes, ranks_per_node, intra)
        + tree_collective_time_ns(op, full_bytes, num_nodes, inter)
}

/// Time for a collective over a hierarchical cluster: intra-server ranks use
/// NVLink; once multiple servers participate the inter-server NIC is the
/// bottleneck link (its per-server aggregate bandwidth is shared by all the
/// server's GPUs) and the inter-server phase runs the tree algorithm.
pub fn hierarchical_collective_time_ns(
    op: Collective,
    full_bytes: u64,
    cluster: &ClusterSpec,
    num_gpus: u64,
) -> Ns {
    let per_server = cluster.server.num_gpus() as u64;
    if num_gpus <= per_server {
        return collective_time_ns(op, full_bytes, num_gpus, &cluster.server.nvlink);
    }
    let servers = num_gpus.div_ceil(per_server);
    hierarchical_collective_ns(
        op,
        full_bytes,
        &cluster.server.nvlink,
        &cluster.shared_nic(),
        per_server,
        servers,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use angel_hw::LinkClass;

    fn nvlink() -> Link {
        Link::new(LinkClass::NvLink, 200_000_000_000, 5_000)
    }

    #[test]
    fn single_rank_is_free() {
        for op in [
            Collective::AllGather,
            Collective::ReduceScatter,
            Collective::AllReduce,
            Collective::AllToAll,
        ] {
            assert_eq!(collective_time_ns(op, 1 << 30, 1, &nvlink()), 0);
            assert_eq!(wire_bytes_per_rank(op, 1 << 30, 1), 0);
        }
    }

    #[test]
    fn all_reduce_is_twice_reduce_scatter() {
        let b = 1u64 << 30;
        let rs = wire_bytes_per_rank(Collective::ReduceScatter, b, 8);
        let ar = wire_bytes_per_rank(Collective::AllReduce, b, 8);
        assert_eq!(ar, 2 * rs);
    }

    #[test]
    fn wire_bytes_approach_full_buffer() {
        let b = 1u64 << 30;
        let w2 = wire_bytes_per_rank(Collective::AllGather, b, 2);
        let w64 = wire_bytes_per_rank(Collective::AllGather, b, 64);
        assert_eq!(w2, b / 2);
        assert!(w64 > b * 9 / 10 && w64 < b);
    }

    #[test]
    fn time_grows_sublinearly_with_ranks() {
        // The per-rank wire volume saturates at the full buffer size, so a
        // bigger ring costs only more latency steps — the property behind
        // ZeRO's scalability.
        let b = 1u64 << 30;
        let t8 = collective_time_ns(Collective::AllGather, b, 8, &nvlink());
        let t64 = collective_time_ns(Collective::AllGather, b, 64, &nvlink());
        assert!(t64 < t8 * 2);
    }

    const ALL_OPS: [Collective; 4] = [
        Collective::AllGather,
        Collective::ReduceScatter,
        Collective::AllReduce,
        Collective::AllToAll,
    ];

    /// Regression: on a 1-server cluster the hierarchical model must equal
    /// the flat single-node ring *exactly*, for every op and group size —
    /// this is the invariant that keeps all pre-mesh single-server results
    /// byte-identical.
    #[test]
    fn one_server_matches_flat_model_exactly() {
        let cluster = ClusterSpec::single_a100();
        for op in ALL_OPS {
            for n in [1u64, 2, 3, 4, 8] {
                for bytes in [1u64, 4 << 20, 1 << 30] {
                    assert_eq!(
                        hierarchical_collective_time_ns(op, bytes, &cluster, n),
                        collective_time_ns(op, bytes, n, &cluster.server.nvlink),
                        "{op:?} n={n} bytes={bytes}"
                    );
                }
            }
        }
    }

    #[test]
    fn inter_node_tree_beats_ring_latency_at_scale() {
        // 128 nodes: the ring pays 127 latency steps, the tree ⌈log₂128⌉ = 7;
        // the bandwidth terms are identical.
        let nic = Link::new(LinkClass::Nic, 25_000_000_000, 20_000);
        let b = 4u64 << 20;
        let ring = collective_time_ns(Collective::AllReduce, b, 128, &nic);
        let tree = tree_collective_time_ns(Collective::AllReduce, b, 128, &nic);
        assert_eq!(ring - tree, 2 * (127 - 7) * nic.latency_ns);
        // All-to-all has no tree algorithm: same cost either way.
        assert_eq!(
            tree_collective_time_ns(Collective::AllToAll, b, 128, &nic),
            collective_time_ns(Collective::AllToAll, b, 128, &nic)
        );
    }

    proptest::proptest! {
        /// More bytes never get cheaper.
        #[test]
        fn hierarchical_time_monotone_in_bytes(
            bytes in 1u64..(1u64 << 32),
            extra in 1u64..(1u64 << 24),
            gpus in 1u64..1024,
        ) {
            let cluster = ClusterSpec::a100_tencent(128);
            for op in ALL_OPS {
                let t0 = hierarchical_collective_time_ns(op, bytes, &cluster, gpus);
                let t1 = hierarchical_collective_time_ns(op, bytes + extra, &cluster, gpus);
                proptest::prop_assert!(t0 <= t1, "{op:?} gpus={gpus} bytes={bytes}+{extra}");
            }
        }

        /// More ranks never get cheaper (more latency steps, larger wire
        /// fraction; the intra-server phase saturates at 8 ranks).
        #[test]
        fn hierarchical_time_monotone_in_ranks(
            gpus in 1u64..1023,
            extra in 1u64..64,
            bytes in 1u64..(1u64 << 32),
        ) {
            let cluster = ClusterSpec::a100_tencent(136);
            for op in ALL_OPS {
                let t0 = hierarchical_collective_time_ns(op, bytes, &cluster, gpus);
                let t1 = hierarchical_collective_time_ns(op, bytes, &cluster, gpus + extra);
                proptest::prop_assert!(t0 <= t1, "{op:?} gpus={gpus}+{extra}");
            }
        }

        /// Growing the fleet server by server (all GPUs participating)
        /// never gets cheaper.
        #[test]
        fn hierarchical_time_monotone_in_servers(
            servers in 1u64..128,
            extra in 1u64..32,
            bytes in 1u64..(1u64 << 32),
        ) {
            for op in ALL_OPS {
                let c0 = ClusterSpec::a100_tencent(servers as usize);
                let c1 = ClusterSpec::a100_tencent((servers + extra) as usize);
                let t0 = hierarchical_collective_time_ns(op, bytes, &c0, servers * 8);
                let t1 =
                    hierarchical_collective_time_ns(op, bytes, &c1, (servers + extra) * 8);
                proptest::prop_assert!(t0 <= t1, "{op:?} servers={servers}+{extra}");
            }
        }
    }

    #[test]
    fn hierarchical_uses_nvlink_within_server() {
        let cluster = ClusterSpec::a100_tencent(4);
        let b = 1u64 << 28;
        let t_intra = hierarchical_collective_time_ns(Collective::AllGather, b, &cluster, 8);
        let t_flat = collective_time_ns(Collective::AllGather, b, 8, &cluster.server.nvlink);
        assert_eq!(t_intra, t_flat);
    }

    #[test]
    fn crossing_servers_is_much_slower() {
        let cluster = ClusterSpec::a100_tencent(4);
        let b = 1u64 << 28;
        let t8 = hierarchical_collective_time_ns(Collective::AllGather, b, &cluster, 8);
        let t32 = hierarchical_collective_time_ns(Collective::AllGather, b, &cluster, 32);
        // NIC bandwidth per GPU (200/8 = 25 GB/s) ≪ NVLink (200 GB/s).
        assert!(t32 > 3 * t8, "t8={t8} t32={t32}");
    }

    #[test]
    fn all_to_all_volume_matches_moe_model() {
        // The collective model and angel-model's MoE byte formula must agree.
        let cfg = angel_model::TransformerConfig::t5_moe_1_2t();
        let b = 4u64;
        let n = 16u64;
        let per_gpu_buffer = b * cfg.seq_len as u64 * cfg.d_model as u64 * angel_model::dtype::HALF;
        let from_model = angel_model::moe::all_to_all_bytes_per_gpu(&cfg, b, n);
        // dispatch + combine = 2 one-way all-to-alls.
        let from_collective = 2 * wire_bytes_per_rank(Collective::AllToAll, per_gpu_buffer, n);
        assert_eq!(from_model, from_collective);
    }
}
