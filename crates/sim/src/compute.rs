//! Time models for computation: GPU forward/backward and CPU optimizer
//! updates.
//!
//! # Calibration
//!
//! The GPU model converts FLOPs into time through a peak throughput and a
//! batch-dependent efficiency curve. The A100's BF16 tensor-core peak is
//! 312 TFLOP/s; sustained large-batch transformer training reaches roughly
//! half of that, and small batches fall far below — the paper's fine-tuning
//! observation ("a small batch size is often used; however, this results in
//! ... reduced utilization of expensive GPU computing units"). We model
//! efficiency as a saturating curve `eff(b) = eff_max · b / (b + b_half)`,
//! with `eff_max = 0.5` and `b_half = 1` calibrated once against the paper's
//! Table 5 throughput (GPT 28B at batch 38 on 8 GPUs ≈ 11 samples/s) and
//! used unchanged by every experiment.
//!
//! The CPU model converts bytes of optimizer state into time through
//! aggregate DDR bandwidth shared by the update workers — Section 4.2:
//! optimizer updates are "memory-intensive and take less time to compute",
//! i.e. bandwidth-bound FP32 element-wise math.

use crate::Ns;
use serde::{Deserialize, Serialize};

/// GPU compute-time model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GpuComputeModel {
    /// Peak half-precision throughput in FLOP/s (A100: 312e12).
    pub peak_flops: f64,
    /// Efficiency reached at very large batch (fraction of peak).
    pub max_efficiency: f64,
    /// Per-GPU batch size at which efficiency reaches half of
    /// `max_efficiency`.
    pub half_batch: f64,
    /// Fixed per-operation launch overhead.
    pub launch_overhead_ns: Ns,
}

impl Default for GpuComputeModel {
    fn default() -> Self {
        Self::a100()
    }
}

impl GpuComputeModel {
    /// The calibrated A100 model used throughout the reproduction.
    pub fn a100() -> Self {
        Self {
            peak_flops: 312e12,
            max_efficiency: 0.5,
            half_batch: 1.0,
            launch_overhead_ns: 20_000,
        }
    }

    /// Efficiency (fraction of peak) at a given per-GPU micro-batch size.
    pub fn efficiency(&self, batch: f64) -> f64 {
        assert!(batch > 0.0);
        self.max_efficiency * batch / (batch + self.half_batch)
    }

    /// Time to execute `flops` at micro-batch `batch`.
    pub fn time_ns(&self, flops: u64, batch: f64) -> Ns {
        let eff = self.efficiency(batch.max(0.02));
        let secs = flops as f64 / (self.peak_flops * eff);
        self.launch_overhead_ns + (secs * 1e9) as Ns
    }

    /// Kernel efficiency depends on tile work, not batch alone: a matmul of
    /// `batch` sequences against a `width`-wide weight slice feeds the
    /// tensor cores like a batch of `batch · width / 1024` against a
    /// 1024-wide one. All three systems (Angel-PTM, DeepSpeed, Megatron-LM)
    /// use this same normalization — for Megatron, tensor parallelism
    /// shrinks `width` by `tp`, which is how narrow TP slices lose
    /// efficiency while wide ones don't.
    pub fn effective_batch(batch: f64, width: f64) -> f64 {
        batch * width / 1024.0
    }

    /// [`GpuComputeModel::time_ns`] with the tile-work normalization.
    pub fn time_ns_sized(&self, flops: u64, batch: f64, width: f64) -> Ns {
        self.time_ns(flops, Self::effective_batch(batch, width))
    }
}

/// CPU optimizer-update time model: bandwidth-bound FP32 element-wise math.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CpuUpdateModel {
    /// Aggregate DDR bandwidth usable by the update workers, bytes/s.
    /// Table 3's 32 × DDR4-2933 gives ~170 GB/s of theoretical stream
    /// bandwidth; updates share it with transfers, so we use 60%.
    pub effective_bandwidth: u64,
    /// Number of worker threads (updates parallelize across layers/pages;
    /// beyond the bandwidth limit more workers do not help).
    pub workers: usize,
    /// Fixed per-task overhead.
    pub overhead_ns: Ns,
}

impl Default for CpuUpdateModel {
    fn default() -> Self {
        Self::epyc_tencent()
    }
}

impl CpuUpdateModel {
    /// The 4 × EPYC 7K62 host of Table 3.
    pub fn epyc_tencent() -> Self {
        Self {
            effective_bandwidth: 102 * 1_000_000_000,
            workers: 192,
            overhead_ns: 5_000,
        }
    }

    /// Time for one worker-pool-wide update touching `bytes` of state.
    /// The pool is bandwidth-bound: time = bytes / effective_bandwidth.
    pub fn time_ns(&self, bytes: u64) -> Ns {
        self.overhead_ns + angel_hw::link::bytes_over_bandwidth_ns(bytes, self.effective_bandwidth)
    }

    /// Time when only a `1/shards` fraction of the pool's bandwidth serves
    /// this update (e.g. per-GPU update shards running concurrently).
    pub fn time_ns_sharded(&self, bytes: u64, shards: usize) -> Ns {
        assert!(shards >= 1);
        let bw = (self.effective_bandwidth / shards as u64).max(1);
        self.overhead_ns + angel_hw::link::bytes_over_bandwidth_ns(bytes, bw)
    }
}

/// GPU-side optimizer update (the dynamic cache path of Section 4.2 moves
/// "the relevant CPU computations to the GPUs"): bandwidth-bound on HBM.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GpuUpdateModel {
    /// HBM bandwidth usable by element-wise kernels (A100: 600 GB/s × ~80%).
    pub effective_bandwidth: u64,
    pub overhead_ns: Ns,
}

impl Default for GpuUpdateModel {
    fn default() -> Self {
        Self {
            effective_bandwidth: 480 * 1_000_000_000,
            overhead_ns: 10_000,
        }
    }
}

impl GpuUpdateModel {
    pub fn time_ns(&self, bytes: u64) -> Ns {
        self.overhead_ns + angel_hw::link::bytes_over_bandwidth_ns(bytes, self.effective_bandwidth)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn efficiency_saturates() {
        let m = GpuComputeModel::a100();
        assert!(m.efficiency(0.5) < m.efficiency(4.0));
        assert!(m.efficiency(64.0) < m.max_efficiency);
        assert!(m.efficiency(64.0) > 0.95 * m.max_efficiency);
    }

    #[test]
    fn small_batches_underutilize() {
        // The fine-tuning problem: batch 1 runs at half the large-batch
        // efficiency under our curve.
        let m = GpuComputeModel::a100();
        assert!((m.efficiency(1.0) - 0.25).abs() < 1e-9);
    }

    #[test]
    fn gpu_time_scales_inverse_with_efficiency() {
        let m = GpuComputeModel::a100();
        let flops = 1_000_000_000_000; // 1 TFLOP
        let t1 = m.time_ns(flops, 1.0);
        let t16 = m.time_ns(flops, 16.0);
        assert!(t1 > t16);
        // batch 16: eff ≈ 0.47; batch 1: 0.25 → ~1.88× faster.
        let ratio = (t1 - m.launch_overhead_ns) as f64 / (t16 - m.launch_overhead_ns) as f64;
        assert!(ratio > 1.7 && ratio < 2.0, "{ratio}");
    }

    #[test]
    fn cpu_update_is_bandwidth_bound() {
        let m = CpuUpdateModel::epyc_tencent();
        // 102 GB touched = 1 second.
        let t = m.time_ns(102 * 1_000_000_000);
        assert!((t as i64 - 1_000_005_000).abs() < 1_000);
    }

    #[test]
    fn sharded_update_divides_bandwidth() {
        let m = CpuUpdateModel::epyc_tencent();
        let whole = m.time_ns(1 << 30);
        let eighth = m.time_ns_sharded(1 << 30, 8);
        assert!(eighth > 7 * whole && eighth < 9 * whole);
    }

    #[test]
    fn gpu_update_is_much_faster_than_cpu() {
        // The motivation for the dynamic GPU cache: HBM-bound updates beat
        // DDR-bound ones by ~5×.
        let cpu = CpuUpdateModel::epyc_tencent();
        let gpu = GpuUpdateModel::default();
        let bytes = 1u64 << 30;
        assert!(cpu.time_ns(bytes) > 4 * gpu.time_ns(bytes));
    }
}
