//! Chrome-trace export: turn an executed schedule into a JSON timeline
//! loadable in `chrome://tracing` / Perfetto, with one track per resource.
//!
//! This is the visualization story for the paper's overlap claims: the
//! exported timeline shows computes, page movements, collectives and
//! optimizer updates side by side, making "maximizing the overlapping of
//! different resources" (Section 4.2) literally visible. Memory domains
//! additionally export resident-bytes counter tracks (`C` events) replayed
//! from each task's `MemEffect`s — the Table 4 hierarchical-memory story.
//!
//! Thread ids: the *one* authoritative mapping from a resource to its
//! Perfetto `tid` is [`resource_tid`]. Both the thread-name metadata (built
//! from [`Resources::iter`]) and the per-task `X` events go through it, so
//! the two can never disagree — previously the metadata used a separate
//! `enumerate()` index that was equal only by construction.

use std::collections::HashSet;

use crate::engine::{ExecutionReport, ResourceId, Simulation};

/// The Perfetto `tid` for a simulated resource. Single source of truth for
/// every event kind in this module.
pub fn resource_tid(r: ResourceId) -> u64 {
    r.0 as u64
}

/// Thread-name metadata plus one complete (`X`) event per *completed* task,
/// all under process `pid`.
///
/// Tasks killed in flight by a permanent fault have a start time but no
/// finish time; their duration is undefined (computing it underflowed
/// before this was caught), so they are skipped — `ExecutionReport::
/// failed_tasks` still reports them.
pub fn trace_events(
    sim: &Simulation,
    report: &ExecutionReport,
    pid: u64,
) -> Vec<serde_json::Value> {
    let failed: HashSet<usize> = report.failed_tasks.iter().copied().collect();
    let mut events = Vec::new();
    // Thread name metadata — same tid mapping as the task events below.
    for (id, name) in sim.resources().iter() {
        events.push(serde_json::json!({
            "name": "thread_name",
            "ph": "M",
            "pid": pid,
            "tid": resource_tid(id),
            "args": {"name": name},
        }));
    }
    for (i, task) in sim.tasks().enumerate() {
        if failed.contains(&i) {
            continue;
        }
        let start_us = report.start_times[i] as f64 / 1e3;
        let dur_us = (report.finish_times[i] - report.start_times[i]) as f64 / 1e3;
        let name = if task.label.is_empty() {
            format!("task{i}")
        } else {
            task.label.clone()
        };
        events.push(serde_json::json!({
            "name": name,
            "ph": "X",
            "pid": pid,
            "tid": resource_tid(task.resource),
            "ts": start_us,
            "dur": dur_us,
        }));
    }
    events
}

/// One resident-bytes counter (`C`) track per memory domain, replayed from
/// the completed tasks' `MemEffect`s: bytes are acquired at task start and
/// released at task finish, exactly as the executor accounts them. Killed
/// tasks are skipped (their duration is undefined), so the final counter
/// value can differ from `final_mem` under permanent faults.
pub fn counter_events(
    sim: &Simulation,
    report: &ExecutionReport,
    pid: u64,
) -> Vec<serde_json::Value> {
    let failed: HashSet<usize> = report.failed_tasks.iter().copied().collect();
    let domains = sim.resources().num_mem_domains();
    // Per domain: (time, signed delta) change points.
    let mut deltas: Vec<Vec<(u64, i64)>> = vec![Vec::new(); domains];
    for (i, task) in sim.tasks().enumerate() {
        if failed.contains(&i) {
            continue;
        }
        for e in &task.mem {
            if e.acquire > 0 {
                deltas[e.domain.0].push((report.start_times[i], e.acquire as i64));
            }
            if e.release > 0 {
                deltas[e.domain.0].push((report.finish_times[i], -(e.release as i64)));
            }
        }
    }
    let mut events = Vec::new();
    for (domain, name) in sim.resources().mem_domains() {
        let points = &mut deltas[domain.0];
        if points.is_empty() {
            continue;
        }
        points.sort_unstable();
        let track = format!("{name} resident bytes");
        let mut resident: i64 = 0;
        let mut idx = 0;
        while idx < points.len() {
            let ts = points[idx].0;
            // Coalesce all deltas at the same timestamp into one sample.
            while idx < points.len() && points[idx].0 == ts {
                resident += points[idx].1;
                idx += 1;
            }
            debug_assert!(resident >= 0, "negative resident bytes in {name}");
            events.push(serde_json::json!({
                "name": track.clone(),
                "ph": "C",
                "pid": pid,
                "tid": resource_tid(ResourceId(0)),
                "ts": ts as f64 / 1e3,
                "args": {"value": resident.max(0)},
            }));
        }
    }
    events
}

/// Serialize one executed simulation as Chrome trace-event JSON.
///
/// Each resource becomes a thread (`tid`), each task a complete event (`X`)
/// with microsecond timestamps (the trace-event format's unit).
pub fn chrome_trace(sim: &Simulation, report: &ExecutionReport) -> String {
    let events = trace_events(sim, report, 1);
    // Trace events are integers and strings only; serialization of such a
    // tree is infallible.
    #[allow(clippy::disallowed_methods)]
    serde_json::to_string_pretty(&serde_json::json!({ "traceEvents": events }))
        .expect("trace serializes")
}

#[cfg(test)]
mod tests {
    use crate::engine::{FaultEvent, FaultKind, MemEffect};
    use crate::{Resources, SimTask, Simulation, Work};

    #[test]
    fn trace_contains_every_task_and_resource() {
        let mut r = Resources::new();
        let gpu = r.add_compute("gpu");
        let pcie = r.add_link("pcie", 1_000_000_000, 0);
        let mut sim = Simulation::new(r);
        let m = sim.submit(SimTask::new(pcie, Work::Bytes(1000)).with_label("move"));
        sim.submit(
            SimTask::new(gpu, Work::Duration(500))
                .with_deps([m])
                .with_label("kernel"),
        );
        let report = sim.run();
        let json = super::chrome_trace(&sim, &report);
        assert!(json.contains("\"kernel\""));
        assert!(json.contains("\"move\""));
        assert!(json.contains("\"gpu\""));
        assert!(json.contains("\"pcie\""));
        // Valid JSON with the right event count: 2 metadata + 2 tasks.
        let parsed: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed["traceEvents"].as_array().unwrap().len(), 4);
    }

    #[test]
    fn event_times_match_report() {
        let mut r = Resources::new();
        let gpu = r.add_compute("gpu");
        let mut sim = Simulation::new(r);
        sim.submit(SimTask::new(gpu, Work::Duration(2_000)).with_label("a"));
        sim.submit(SimTask::new(gpu, Work::Duration(3_000)).with_label("b"));
        let report = sim.run();
        let json = super::chrome_trace(&sim, &report);
        let parsed: serde_json::Value = serde_json::from_str(&json).unwrap();
        let b = &parsed["traceEvents"][2]; // metadata, a, b
        assert_eq!(b["ts"].as_f64().unwrap(), 2.0); // µs
        assert_eq!(b["dur"].as_f64().unwrap(), 3.0);
    }

    /// Regression: the metadata tids came from `enumerate()` while task
    /// tids came from `task.resource.0` — two independent code paths. With
    /// tasks on a non-dense subset of resources, every X event's tid must
    /// still have thread-name metadata carrying the right resource name.
    #[test]
    fn tids_consistent_with_non_dense_resource_usage() {
        let mut r = Resources::new();
        let r0 = r.add_compute("gpu0");
        let _r1 = r.add_compute("gpu1"); // never used by a task
        let _r2 = r.add_link("pcie", 1_000_000_000, 0); // never used
        let r3 = r.add_compute("cpu");
        let mut sim = Simulation::new(r);
        sim.submit(SimTask::new(r3, Work::Duration(100)).with_label("on_cpu"));
        sim.submit(SimTask::new(r0, Work::Duration(100)).with_label("on_gpu0"));
        let report = sim.run();
        let parsed: serde_json::Value =
            serde_json::from_str(&super::chrome_trace(&sim, &report)).unwrap();
        let events = parsed["traceEvents"].as_array().unwrap();
        // tid → name from metadata.
        let mut names = std::collections::HashMap::new();
        for e in events {
            if e["ph"].as_str() == Some("M") {
                names.insert(
                    e["tid"].as_u64().unwrap(),
                    e["args"]["name"].as_str().unwrap().to_string(),
                );
            }
        }
        let mut seen = Vec::new();
        for e in events {
            if e["ph"].as_str() == Some("X") {
                let tid = e["tid"].as_u64().unwrap();
                let label = e["name"].as_str().unwrap();
                let expect = match label {
                    "on_cpu" => "cpu",
                    "on_gpu0" => "gpu0",
                    other => panic!("unexpected task {other}"),
                };
                assert_eq!(names[&tid], expect, "task {label} landed on wrong track");
                seen.push(tid);
            }
        }
        assert_eq!(seen.len(), 2);
        assert_ne!(seen[0], seen[1]);
    }

    /// Regression: a task killed in flight by a permanent fault has
    /// `start_times > 0` but `finish_times == 0`; computing its duration
    /// underflowed. Killed tasks are now skipped.
    #[test]
    fn killed_in_flight_task_is_skipped_not_underflowed() {
        let mut r = Resources::new();
        let gpu = r.add_compute("gpu");
        let mut sim = Simulation::new(r);
        let a = sim.submit(SimTask::new(gpu, Work::Duration(1_000)).with_label("ok"));
        sim.submit(
            SimTask::new(gpu, Work::Duration(10_000))
                .with_deps([a])
                .with_label("killed"),
        );
        sim.inject_fault(FaultEvent {
            resource: gpu,
            at: 2_000,
            kind: FaultKind::Permanent,
        });
        let report = sim.run();
        assert!(!report.failed_tasks.is_empty());
        let json = super::chrome_trace(&sim, &report);
        let parsed: serde_json::Value = serde_json::from_str(&json).unwrap();
        for e in parsed["traceEvents"].as_array().unwrap() {
            if e["ph"].as_str() == Some("X") {
                assert_eq!(e["name"].as_str(), Some("ok"));
                assert!(e["dur"].as_f64().unwrap() >= 0.0);
            }
        }
    }

    #[test]
    fn counter_track_replays_resident_bytes() {
        let mut r = Resources::new();
        let gpu = r.add_compute("gpu");
        let dom = r.add_mem_domain("HBM", 1 << 30);
        let mut sim = Simulation::new(r);
        let a = sim.submit(
            SimTask::new(gpu, Work::Duration(1_000))
                .with_label("alloc")
                .with_mem(MemEffect {
                    domain: dom,
                    acquire: 600,
                    release: 0,
                }),
        );
        sim.submit(
            SimTask::new(gpu, Work::Duration(1_000))
                .with_deps([a])
                .with_label("free")
                .with_mem(MemEffect {
                    domain: dom,
                    acquire: 0,
                    release: 600,
                }),
        );
        let report = sim.run();
        let events = super::counter_events(&sim, &report, 1);
        assert!(!events.is_empty());
        let values: Vec<i64> = events
            .iter()
            .map(|e| e["args"]["value"].as_i64().unwrap())
            .collect();
        assert_eq!(*values.first().unwrap(), 600);
        assert_eq!(*values.last().unwrap(), 0);
        for e in &events {
            assert_eq!(e["ph"].as_str(), Some("C"));
            assert!(e["name"].as_str().unwrap().contains("HBM"));
        }
    }
}
