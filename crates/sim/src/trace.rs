//! Chrome-trace export: turn an executed schedule into a JSON timeline
//! loadable in `chrome://tracing` / Perfetto, with one track per resource.
//!
//! This is the visualization story for the paper's overlap claims: the
//! exported timeline shows computes, page movements, collectives and
//! optimizer updates side by side, making "maximizing the overlapping of
//! different resources" (Section 4.2) literally visible.

use crate::engine::{ExecutionReport, Simulation};

/// Serialize one executed simulation as Chrome trace-event JSON.
///
/// Each resource becomes a thread (`tid`), each task a complete event (`X`)
/// with microsecond timestamps (the trace-event format's unit).
pub fn chrome_trace(sim: &Simulation, report: &ExecutionReport) -> String {
    let mut events = Vec::new();
    // Thread name metadata.
    for (tid, name) in sim.resources().names().enumerate() {
        events.push(serde_json::json!({
            "name": "thread_name",
            "ph": "M",
            "pid": 1,
            "tid": tid,
            "args": {"name": name},
        }));
    }
    for (i, task) in sim.tasks().enumerate() {
        let start_us = report.start_times[i] as f64 / 1e3;
        let dur_us = (report.finish_times[i] - report.start_times[i]) as f64 / 1e3;
        let name = if task.label.is_empty() {
            format!("task{i}")
        } else {
            task.label.clone()
        };
        events.push(serde_json::json!({
            "name": name,
            "ph": "X",
            "pid": 1,
            "tid": task.resource.0,
            "ts": start_us,
            "dur": dur_us,
        }));
    }
    serde_json::to_string_pretty(&serde_json::json!({ "traceEvents": events }))
        .expect("trace serializes")
}

#[cfg(test)]
mod tests {
    use crate::{Resources, SimTask, Simulation, Work};

    #[test]
    fn trace_contains_every_task_and_resource() {
        let mut r = Resources::new();
        let gpu = r.add_compute("gpu");
        let pcie = r.add_link("pcie", 1_000_000_000, 0);
        let mut sim = Simulation::new(r);
        let m = sim.submit(SimTask::new(pcie, Work::Bytes(1000)).with_label("move"));
        sim.submit(
            SimTask::new(gpu, Work::Duration(500))
                .with_deps([m])
                .with_label("kernel"),
        );
        let report = sim.run();
        let json = super::chrome_trace(&sim, &report);
        assert!(json.contains("\"kernel\""));
        assert!(json.contains("\"move\""));
        assert!(json.contains("\"gpu\""));
        assert!(json.contains("\"pcie\""));
        // Valid JSON with the right event count: 2 metadata + 2 tasks.
        let parsed: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed["traceEvents"].as_array().unwrap().len(), 4);
    }

    #[test]
    fn event_times_match_report() {
        let mut r = Resources::new();
        let gpu = r.add_compute("gpu");
        let mut sim = Simulation::new(r);
        sim.submit(SimTask::new(gpu, Work::Duration(2_000)).with_label("a"));
        sim.submit(SimTask::new(gpu, Work::Duration(3_000)).with_label("b"));
        let report = sim.run();
        let json = super::chrome_trace(&sim, &report);
        let parsed: serde_json::Value = serde_json::from_str(&json).unwrap();
        let b = &parsed["traceEvents"][2]; // metadata, a, b
        assert_eq!(b["ts"].as_f64().unwrap(), 2.0); // µs
        assert_eq!(b["dur"].as_f64().unwrap(), 3.0);
    }
}
