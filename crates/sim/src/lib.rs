//! Discrete-event execution substrate for the Angel-PTM reproduction.
//!
//! Angel-PTM's Unified Scheduler emits *schedules*: ordered lists of tasks —
//! page movements, all-gathers, layer computations, optimizer updates — each
//! bound to a hardware resource (a CUDA stream, a PCIe channel, the NIC, the
//! SSD). On the real system those schedules execute on A100 servers; here
//! they execute on a discrete-event simulator with the same interface:
//! per-resource FIFO streams (CUDA-stream semantics), task dependencies, and
//! calibrated durations derived from the Table 3 bandwidths and a FLOPs
//! model.
//!
//! The simulator reports exactly the quantities the paper's evaluation
//! measures: end-to-end iteration time (→ samples/s), per-resource busy time
//! (→ GPU utilization, the Section 4.3 "80% idle" observation), overlap
//! ratios, and peak memory per device.
//!
//! * [`engine`] — event queue, FIFO resources, the schedule executor;
//! * [`compute`] — time models for GPU compute and CPU optimizer updates;
//! * [`collectives`] — analytic cost models for ring all-gather /
//!   reduce-scatter / all-reduce and MoE all-to-all.

// Unit tests keep panicking assertions; library code is covered by the
// workspace-wide unwrap/expect ban (clippy.toml disallowed-methods).
#![cfg_attr(test, allow(clippy::disallowed_methods))]

pub mod collectives;
pub mod compute;
pub mod engine;
pub mod trace;

pub use engine::{
    Access, AccessMode, ExecutionReport, FaultEvent, FaultKind, MemDomainId, MemEffect, ObjectId,
    ResourceId, Resources, SimTask, Simulation, Work,
};
pub use trace::{chrome_trace, counter_events, resource_tid, trace_events};

/// Nanoseconds — the simulator's clock unit.
pub type Ns = u64;

/// Convert nanoseconds to seconds for reports.
pub fn ns_to_s(ns: Ns) -> f64 {
    ns as f64 / 1e9
}
