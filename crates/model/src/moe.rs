//! Mixture-of-Experts extensions for the T5-MoE experiments.
//!
//! Section 6.4: "Angel-PTM trained T5-MoE models using expert parallelism,
//! where expert parameters within an MoE layer are sharded among all GPUs
//! while non-MoE parameters are duplicated. The T5-MoE-1.2T model has 2304
//! experts per MoE layer, and the number of experts per GPU per MoE layer is
//! fixed at 9 to achieve different model sizes when varying the number of
//! GPUs."

use crate::config::TransformerConfig;
use crate::dtype;
use serde::{Deserialize, Serialize};

/// Expert-parallel layout of an MoE model over a GPU fleet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExpertParallelism {
    pub num_gpus: usize,
    pub experts_per_gpu: usize,
}

impl ExpertParallelism {
    /// The paper's scaling rule: 9 experts per GPU per MoE layer, so the
    /// expert count (and total parameter count) grows with the fleet.
    pub const PAPER_EXPERTS_PER_GPU: usize = 9;

    pub fn paper_scaling(num_gpus: usize) -> Self {
        Self {
            num_gpus,
            experts_per_gpu: Self::PAPER_EXPERTS_PER_GPU,
        }
    }

    /// Experts per MoE layer across the fleet (e.g. 128 GPUs × 9 = 1152, the
    /// paper's example).
    pub fn total_experts(&self) -> usize {
        self.num_gpus * self.experts_per_gpu
    }

    /// Scale `base` to this fleet: expert count set to
    /// [`ExpertParallelism::total_experts`].
    pub fn scale_model(&self, base: &TransformerConfig) -> TransformerConfig {
        let mut cfg = base.clone().with_experts(self.total_experts());
        cfg.name = format!("{}@{}gpus", base.name, self.num_gpus);
        cfg
    }
}

/// Bytes each GPU contributes to / receives from the all-to-all token
/// exchange of one MoE layer: every token's hidden vector travels to its
/// expert's GPU and back.
///
/// With `b·s` tokens per GPU of `d_model` FP16 elements, and uniform routing,
/// a fraction `(g-1)/g` of tokens leave the local GPU. We model the dispatch
/// and combine phases separately (×2).
pub fn all_to_all_bytes_per_gpu(config: &TransformerConfig, b_per_gpu: u64, num_gpus: u64) -> u64 {
    let tokens = b_per_gpu * config.seq_len as u64;
    let vec_bytes = config.d_model as u64 * dtype::HALF;
    if num_gpus <= 1 {
        return 0;
    }
    let leaving = tokens * (num_gpus - 1) / num_gpus;
    2 * leaving * vec_bytes // dispatch + combine
}

/// Total parameters held per GPU under expert parallelism: the local expert
/// shard plus a full replica of all non-expert parameters.
pub fn params_per_gpu(config: &TransformerConfig, ep: ExpertParallelism) -> u64 {
    assert!(config.is_moe());
    let expert_params =
        config.layers as u64 * ep.experts_per_gpu as u64 * config.ffn_params_per_expert();
    let shared =
        config.layers as u64 * (config.attn_params_per_layer() + config.norm_params_per_layer());
    expert_params + shared
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_128_gpus() {
        // "the T5-MoE model trained on 128 GPUs has 1152 experts per MoE
        // layer".
        let ep = ExpertParallelism::paper_scaling(128);
        assert_eq!(ep.total_experts(), 1152);
    }

    #[test]
    fn full_model_needs_256_gpus() {
        // 2304 experts / 9 per GPU = 256 GPUs for the full 1.2T model.
        let ep = ExpertParallelism::paper_scaling(256);
        assert_eq!(ep.total_experts(), 2304);
        let cfg = ep.scale_model(&TransformerConfig::t5_moe_1_2t());
        assert_eq!(cfg.experts, 2304);
    }

    #[test]
    fn all_to_all_volume_grows_with_fleet() {
        let cfg = TransformerConfig::t5_moe_1_2t();
        let v2 = all_to_all_bytes_per_gpu(&cfg, 4, 2);
        let v64 = all_to_all_bytes_per_gpu(&cfg, 4, 64);
        assert!(v64 > v2);
        assert_eq!(all_to_all_bytes_per_gpu(&cfg, 4, 1), 0);
        // Asymptote: all tokens leave, dispatch+combine.
        let tokens = 4 * cfg.seq_len as u64;
        let limit = 2 * tokens * cfg.d_model as u64 * 2;
        assert!(v64 < limit);
        assert!(v64 > limit * 9 / 10);
    }

    #[test]
    fn params_per_gpu_constant_under_paper_scaling() {
        // The paper fixes experts/GPU at 9, so per-GPU parameters are the
        // same at any fleet size — the basis of its near-linear scaling.
        let base = TransformerConfig::t5_moe_1_2t();
        let p64 = params_per_gpu(
            &ExpertParallelism::paper_scaling(64).scale_model(&base),
            ExpertParallelism::paper_scaling(64),
        );
        let p256 = params_per_gpu(
            &ExpertParallelism::paper_scaling(256).scale_model(&base),
            ExpertParallelism::paper_scaling(256),
        );
        assert_eq!(p64, p256);
    }
}
