//! FLOP counts for Transformer training, used by the discrete-event simulator
//! to convert computational work into time.
//!
//! The paper's scheduler exploits the asymmetry it states in Section 4.2:
//! "forward and backward computations ... are mainly composed of FP16 matrix
//! multiplication, which is rather compute-intensive", while "optimizer
//! update computations ... are composed of FP32 matrix addition, which is
//! memory-intensive and takes less time to compute". We therefore model
//! forward/backward cost in FLOPs (compute-bound) and optimizer cost in
//! bytes touched (bandwidth-bound).

use crate::config::TransformerConfig;
use serde::{Deserialize, Serialize};

/// FLOP counts for one training iteration of one layer at batch `b`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LayerFlops {
    pub forward: u64,
    pub backward: u64,
    /// Extra forward FLOPs re-executed when activation recomputation is
    /// enabled (the paper uses recomputation to relieve GPU memory).
    pub recompute: u64,
}

impl LayerFlops {
    pub fn total(&self, with_recompute: bool) -> u64 {
        self.forward + self.backward + if with_recompute { self.recompute } else { 0 }
    }
}

/// Matmul FLOPs for `m×k · k×n`: 2·m·k·n (multiply + add).
fn matmul_flops(m: u64, k: u64, n: u64) -> u64 {
    2 * m * k * n
}

/// Forward FLOPs of one GPT layer: QKV + attention scores + attention·V +
/// output projection + two FFN matmuls. Elementwise ops (softmax, GeLU,
/// norms) are negligible next to the matmuls and are folded into a 2%
/// surcharge, the common convention.
pub fn layer_flops(config: &TransformerConfig, b: u64) -> LayerFlops {
    let d = config.d_model as u64;
    let f = config.d_ffn as u64;
    let s = config.seq_len as u64;
    let tokens = b * s;
    let qkv = matmul_flops(tokens, d, 3 * d);
    let scores = matmul_flops(b * s, d, s); // Q·Kᵀ per batch row
    let att_v = matmul_flops(b * s, s, d);
    let proj = matmul_flops(tokens, d, d);
    let attn = qkv + scores + att_v + proj;
    let attn = match config.family {
        crate::ModelFamily::Gpt => attn,
        // Average the extra cross-attention of decoder blocks.
        crate::ModelFamily::T5 | crate::ModelFamily::T5Moe => attn * 3 / 2,
    };
    // MoE: a token still visits exactly one expert, so FFN FLOPs do not
    // scale with expert count (ignoring the small router matmul).
    let ffn = matmul_flops(tokens, d, f) + matmul_flops(tokens, f, d);
    let forward = (attn + ffn) * 102 / 100;
    LayerFlops {
        forward,
        // Backward re-derives both data and weight gradients: 2× forward.
        backward: 2 * forward,
        // Recomputation replays the forward pass once.
        recompute: forward,
    }
}

/// Total FLOPs for one iteration of the whole model.
pub fn model_flops(config: &TransformerConfig, b: u64, with_recompute: bool) -> u64 {
    config.layers as u64 * layer_flops(config, b).total(with_recompute)
}

/// Bytes the optimizer touches to update one layer: read FP32 master +
/// moments + FP16 grad, write all back — the bandwidth-bound cost model for
/// CPU updates.
pub fn optimizer_bytes_per_layer(config: &TransformerConfig) -> u64 {
    let params = config.params_per_layer();
    // read (4+4+4+2) + write (4+4+4+2) bytes per parameter.
    params * 28
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flops_scale_linearly_with_batch() {
        let cfg = TransformerConfig::gpt3_1_7b();
        let f1 = layer_flops(&cfg, 1);
        let f4 = layer_flops(&cfg, 4);
        // The 2% elementwise surcharge uses integer arithmetic, so allow a
        // few units of rounding slack.
        assert!((f4.forward as i64 - 4 * f1.forward as i64).abs() < 8);
        assert_eq!(f1.backward, 2 * f1.forward);
        assert_eq!(f1.recompute, f1.forward);
    }

    #[test]
    fn gpt3_175b_flops_sanity() {
        // The standard estimate: ~6 FLOPs per parameter per token for
        // fwd+bwd. For 175B params at b=1, s=2048 that's ~2.1e15 per layer
        // set; check our per-token figure is within 25% of 6·params
        // (attention-score terms push it above).
        let cfg = TransformerConfig::gpt3_175b_openai();
        let total = model_flops(&cfg, 1, false) as f64;
        let tokens = cfg.seq_len as f64;
        let per_param_token = total / (cfg.total_params() as f64 * tokens);
        assert!(
            per_param_token > 5.5 && per_param_token < 8.0,
            "{per_param_token}"
        );
    }

    #[test]
    fn recompute_adds_one_forward() {
        let cfg = TransformerConfig::gpt3_13b();
        let with = model_flops(&cfg, 2, true);
        let without = model_flops(&cfg, 2, false);
        let fwd = cfg.layers as u64 * layer_flops(&cfg, 2).forward;
        assert_eq!(with - without, fwd);
    }

    #[test]
    fn moe_flops_do_not_scale_with_experts() {
        let dense = TransformerConfig::t5_moe_1_2t().with_experts(1);
        let moe = TransformerConfig::t5_moe_1_2t().with_experts(64);
        assert_eq!(layer_flops(&dense, 4).forward, layer_flops(&moe, 4).forward);
    }

    #[test]
    fn optimizer_bytes_match_state_size() {
        let cfg = TransformerConfig::gpt3_1_7b();
        // 28 bytes moved per parameter (r/w of 14 bytes of state).
        assert_eq!(optimizer_bytes_per_layer(&cfg), cfg.params_per_layer() * 28);
    }

    #[test]
    fn t5_costs_more_attention_than_gpt() {
        let gpt = TransformerConfig::new("g", crate::ModelFamily::Gpt, 1, 16, 1024, 4096, 0);
        let t5 = TransformerConfig::new("t", crate::ModelFamily::T5, 1, 16, 1024, 4096, 0);
        assert!(layer_flops(&t5, 1).forward > layer_flops(&gpt, 1).forward);
    }
}
