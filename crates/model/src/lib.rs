//! Model substrate for the Angel-PTM reproduction.
//!
//! Angel-PTM manages *model states* — parameters and optimizer states — plus
//! activations, at the granularity of tensors and 4 MiB pages. Everything the
//! memory manager and scheduler need to know about a model is therefore its
//! **tensor inventory**: which tensors exist, how many bytes each occupies,
//! and when each is touched during an iteration. This crate derives that
//! inventory analytically from the paper's own formulas:
//!
//! * [`TransformerConfig`] — architecture descriptions with the eleven
//!   presets of Table 4 (GPT3-1.7B … T5-MoE-1.2T);
//! * [`footprint`] — the closed-form per-layer memory footprints of Table 1
//!   (mixed-precision training with Adam);
//! * [`inventory`] — the per-layer named-tensor list whose size distribution
//!   reproduces Table 2;
//! * [`flops`] — forward/backward FLOP counts used by the discrete-event
//!   simulator to convert work into time;
//! * [`moe`] — Mixture-of-Experts extensions (expert counts, all-to-all
//!   communication volumes) for the T5-MoE experiments (Figures 9, Table 6).

// Unit tests keep panicking assertions; library code is covered by the
// workspace-wide unwrap/expect ban (clippy.toml disallowed-methods).
#![cfg_attr(test, allow(clippy::disallowed_methods))]

pub mod config;
pub mod flops;
pub mod footprint;
pub mod inventory;
pub mod moe;

pub use config::{ModelFamily, TransformerConfig};
pub use footprint::{LayerFootprint, ModelFootprint};
pub use inventory::{layer_inventory, model_inventory, TensorClass, TensorSpec};

/// Bytes per element for the numeric formats in mixed-precision training
/// (Figure 1 of the paper): computation in half precision, model states in
/// single precision.
pub mod dtype {
    /// FP16 / BF16 — parameters and gradients used by forward/backward.
    pub const HALF: u64 = 2;
    /// FP32 — master parameters and Adam moments.
    pub const SINGLE: u64 = 4;
}
