//! Per-layer tensor inventories: the named tensors, with exact byte sizes,
//! that the Angel-PTM memory manager schedules.
//!
//! Table 2 of the paper shows "the distribution of tensor sizes within one
//! layer of GPT3" — sizes spanning 3072 MB down to 0.02 MB — as the
//! motivation for page-based management. [`layer_inventory`] generates that
//! list from Table 1's formulas, and [`size_distribution`] summarises it in
//! Table 2's format.
//!
//! Reproduction note: with the Section 2.2 geometry (d_m = 12288,
//! d_ffn = 49152, s = 2048) and batch size 16, our inventory reproduces all
//! six ≥1 MB classes of Table 2 *exactly* (3072 MB ×4, 2304 MB ×6, 1152 MB
//! ×4, 768 MB ×20, 576 MB ×12, 288 MB ×8). For the three sub-MB classes the
//! paper's own rows are not derivable from Table 1 (e.g. 0.375 MB matches no
//! product of the listed dimensions at b = 16); we emit the small tensors
//! that *do* follow from Table 1 (attention scores, LayerNorm states) and
//! record the divergence in EXPERIMENTS.md. Sub-MB tensors are irrelevant to
//! every capacity/throughput result — the paper itself notes they "only
//! account for a very small fraction of the overall memory usage".

use crate::config::{ModelFamily, TransformerConfig};
use crate::dtype;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// What role a tensor plays in training. Persistent classes (parameters and
/// optimizer states) survive across iterations; transient classes are
/// produced and released every iteration (Section 2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum TensorClass {
    /// FP16/BF16 parameter used by forward/backward.
    Param16,
    /// FP16/BF16 parameter gradient.
    Grad16,
    /// FP32 master parameter (optimizer state).
    Master32,
    /// FP32 Adam first moment.
    Momentum32,
    /// FP32 Adam second moment.
    Variance32,
    /// FP16 activation or activation gradient.
    Activation,
}

impl TensorClass {
    /// Persistent model state (kept across iterations) vs. transient.
    pub fn is_model_state(self) -> bool {
        !matches!(self, TensorClass::Activation)
    }

    /// Optimizer state (FP32, updated on CPU in the paper's placement).
    pub fn is_optimizer_state(self) -> bool {
        matches!(
            self,
            TensorClass::Master32 | TensorClass::Momentum32 | TensorClass::Variance32
        )
    }

    pub fn bytes_per_element(self) -> u64 {
        match self {
            TensorClass::Param16 | TensorClass::Grad16 | TensorClass::Activation => dtype::HALF,
            _ => dtype::SINGLE,
        }
    }
}

/// One tensor in the inventory.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TensorSpec {
    /// Human-readable name, e.g. `"layer3.attn.wq"`.
    pub name: String,
    /// Owning layer index.
    pub layer: usize,
    pub class: TensorClass,
    /// Exact size in bytes.
    pub bytes: u64,
}

impl TensorSpec {
    fn new(layer: usize, name: String, class: TensorClass, bytes: u64) -> Self {
        Self {
            name,
            layer,
            class,
            bytes,
        }
    }
}

/// Emit `Param16 + Grad16 + Master32 + Momentum32 + Variance32` for a weight
/// of `elems` elements.
fn push_weight(out: &mut Vec<TensorSpec>, layer: usize, name: &str, elems: u64) {
    use TensorClass::*;
    for (class, suffix) in [
        (Param16, "param"),
        (Grad16, "grad"),
        (Master32, "master"),
        (Momentum32, "momentum"),
        (Variance32, "variance"),
    ] {
        out.push(TensorSpec::new(
            layer,
            format!("layer{layer}.{name}.{suffix}"),
            class,
            elems * class.bytes_per_element(),
        ));
    }
}

/// Emit a forward activation and its backward gradient, both FP16.
fn push_act_pair(out: &mut Vec<TensorSpec>, layer: usize, name: &str, elems: u64) {
    for suffix in ["fwd", "bwd"] {
        out.push(TensorSpec::new(
            layer,
            format!("layer{layer}.{name}.{suffix}"),
            TensorClass::Activation,
            elems * dtype::HALF,
        ));
    }
}

/// One attention network's tensors (self- or cross-attention).
fn push_attention(out: &mut Vec<TensorSpec>, layer: usize, prefix: &str, d: u64, b: u64, s: u64) {
    for w in ["wq", "wk", "wv", "wo"] {
        push_weight(out, layer, &format!("{prefix}.{w}"), d * d);
    }
    // Q, K, V projections: three b×s×d activations (+ grads).
    for t in ["q", "k", "v"] {
        push_act_pair(out, layer, &format!("{prefix}.{t}"), b * s * d);
    }
    // Attention scores and softmax output, using the paper's simplified b×s
    // score shape (Table 1's "4bs" rows).
    push_act_pair(out, layer, &format!("{prefix}.scores"), b * s);
    // scores·V and the output projection.
    push_act_pair(out, layer, &format!("{prefix}.attn_out"), b * s * d);
    push_act_pair(out, layer, &format!("{prefix}.proj_out"), b * s * d);
    // Residual add and LayerNorm outputs.
    push_act_pair(out, layer, &format!("{prefix}.residual"), b * s * d);
    push_act_pair(out, layer, &format!("{prefix}.ln_out"), b * s * d);
    // LayerNorm parameters: weight and bias vectors (FP16 param; FP32
    // optimizer states fused per-state as d-element vectors — see module
    // docs for the Table 2 small-class note).
    for t in ["ln.w", "ln.b"] {
        out.push(TensorSpec::new(
            layer,
            format!("layer{layer}.{prefix}.{t}.param"),
            TensorClass::Param16,
            d * dtype::HALF,
        ));
    }
    for (class, suffix) in [
        (TensorClass::Master32, "master"),
        (TensorClass::Momentum32, "momentum"),
        (TensorClass::Variance32, "variance"),
    ] {
        out.push(TensorSpec::new(
            layer,
            format!("layer{layer}.{prefix}.ln.{suffix}"),
            class,
            d * dtype::SINGLE,
        ));
    }
}

/// One FFN (or one expert) worth of tensors.
#[allow(clippy::too_many_arguments)]
fn push_ffn(
    out: &mut Vec<TensorSpec>,
    layer: usize,
    prefix: &str,
    d: u64,
    f: u64,
    b: u64,
    s: u64,
    with_acts: bool,
) {
    push_weight(out, layer, &format!("{prefix}.w1"), d * f);
    push_weight(out, layer, &format!("{prefix}.w2"), f * d);
    if with_acts {
        push_act_pair(out, layer, &format!("{prefix}.h1"), b * s * f);
        push_act_pair(out, layer, &format!("{prefix}.gelu"), b * s * f);
        push_act_pair(out, layer, &format!("{prefix}.out"), b * s * d);
        push_act_pair(out, layer, &format!("{prefix}.residual"), b * s * d);
        push_act_pair(out, layer, &format!("{prefix}.ln_out"), b * s * d);
        for t in ["ln.w", "ln.b"] {
            out.push(TensorSpec::new(
                layer,
                format!("layer{layer}.{prefix}.{t}.param"),
                TensorClass::Param16,
                d * dtype::HALF,
            ));
        }
        for (class, suffix) in [
            (TensorClass::Master32, "master"),
            (TensorClass::Momentum32, "momentum"),
            (TensorClass::Variance32, "variance"),
        ] {
            out.push(TensorSpec::new(
                layer,
                format!("layer{layer}.{prefix}.ln.{suffix}"),
                class,
                d * dtype::SINGLE,
            ));
        }
    }
}

/// Tensor inventory of one Transformer layer at batch size `b`.
///
/// * GPT layers: self-attention + FFN.
/// * T5: odd-indexed layers model decoder blocks with an extra
///   cross-attention network.
/// * MoE: the FFN is replicated per expert (weights only — a token visits a
///   single expert, so activation volume does not scale with expert count).
pub fn layer_inventory(config: &TransformerConfig, layer: usize, b: u64) -> Vec<TensorSpec> {
    let d = config.d_model as u64;
    let f = config.d_ffn as u64;
    let s = config.seq_len as u64;
    let mut out = Vec::new();
    push_attention(&mut out, layer, "attn", d, b, s);
    let is_decoder =
        matches!(config.family, ModelFamily::T5 | ModelFamily::T5Moe) && layer % 2 == 1;
    if is_decoder {
        push_attention(&mut out, layer, "xattn", d, b, s);
    }
    if config.is_moe() {
        // Expert weights: no per-expert activations (token-choice routing).
        for e in 0..config.experts {
            push_ffn(&mut out, layer, &format!("expert{e}"), d, f, b, s, false);
        }
        // The routed FFN activations appear once.
        push_act_pair(&mut out, layer, "moe.h1", b * s * f);
        push_act_pair(&mut out, layer, "moe.gelu", b * s * f);
        push_act_pair(&mut out, layer, "moe.out", b * s * d);
        push_act_pair(&mut out, layer, "moe.residual", b * s * d);
        push_act_pair(&mut out, layer, "moe.ln_out", b * s * d);
    } else {
        push_ffn(&mut out, layer, "ffn", d, f, b, s, true);
    }
    out
}

/// Tensor inventory of the whole model.
pub fn model_inventory(config: &TransformerConfig, b: u64) -> Vec<TensorSpec> {
    (0..config.layers)
        .flat_map(|l| layer_inventory(config, l, b))
        .collect()
}

/// Summarise an inventory as Table 2 does: a map from tensor size (bytes) to
/// the number of tensors of that size, largest first when iterated in
/// reverse.
pub fn size_distribution(tensors: &[TensorSpec]) -> BTreeMap<u64, usize> {
    let mut dist = BTreeMap::new();
    for t in tensors {
        *dist.entry(t.bytes).or_insert(0) += 1;
    }
    dist
}

/// Total bytes by class — the `Params/Acts/Optims` split of Table 1.
pub fn bytes_by_class(tensors: &[TensorSpec]) -> BTreeMap<TensorClass, u64> {
    let mut map = BTreeMap::new();
    for t in tensors {
        *map.entry(t.class).or_insert(0) += t.bytes;
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;
    use angel_hw::MIB;

    /// The Table 2 setting: GPT-3 layer with d=12288, d_ffn=49152, s=2048,
    /// batch 16 (the batch size implied by the table's 768 MB activations).
    fn table2_layer() -> Vec<TensorSpec> {
        let cfg = TransformerConfig::gpt3_175b_openai().with_seq_len(2048);
        layer_inventory(&cfg, 0, 16)
    }

    #[test]
    fn table2_large_classes_exact() {
        let dist = size_distribution(&table2_layer());
        // Size classes ≥ 1 MB must match Table 2 exactly.
        let expected: &[(u64, usize)] = &[
            (3072 * MIB, 4), // b·s·d_ffn activations (FFN up + GeLU, fwd+bwd)
            (2304 * MIB, 6), // FFN weight optimizer states (2 mats × 3)
            (1152 * MIB, 4), // FFN weights fp16 (2 mats × param+grad)
            (768 * MIB, 20), // b·s·d activations
            (576 * MIB, 12), // attention weight optimizer states (4 × 3)
            (288 * MIB, 8),  // attention weights fp16 (4 × param+grad)
        ];
        for &(size, count) in expected {
            assert_eq!(
                dist.get(&size),
                Some(&count),
                "size class {} MiB",
                size / MIB
            );
        }
    }

    #[test]
    fn table2_small_classes_present() {
        let dist = size_distribution(&table2_layer());
        // LayerNorm fp16 params: 2 norms × (w, b) = 4 tensors of d×2 bytes
        // = 0.0234375 MB — exactly Table 2's smallest class.
        assert_eq!(dist.get(&(12288 * 2)), Some(&4));
        // LayerNorm fp32 optimizer states: 2 norms × 3 states of d×4 bytes
        // = 0.046875 MB — Table 2's 6-count class.
        assert_eq!(dist.get(&(12288 * 4)), Some(&6));
        // Attention scores (Table 1's simplified b×s shape): 2 tensors.
        assert_eq!(dist.get(&(16 * 2048 * 2)), Some(&2));
    }

    #[test]
    fn inventory_totals_match_footprint_formulas() {
        let cfg = TransformerConfig::gpt3_175b_openai().with_seq_len(2048);
        let inv = layer_inventory(&cfg, 0, 16);
        let by_class = bytes_by_class(&inv);
        let d = 12288u64;
        let f = 49152u64;
        let b = 16u64;
        let s = 2048u64;
        let params16 = by_class[&TensorClass::Param16] + by_class[&TensorClass::Grad16];
        let optims = by_class[&TensorClass::Master32]
            + by_class[&TensorClass::Momentum32]
            + by_class[&TensorClass::Variance32];
        let acts = by_class[&TensorClass::Activation];
        // Within 0.1% of Table 1's totals (difference = the small tensors the
        // totals drop).
        let close = |x: u64, y: u64| (x as f64 - y as f64).abs() / (y as f64) < 1e-3;
        assert!(close(params16, 16 * d * d + 8 * d * f));
        assert!(close(optims, 48 * d * d + 24 * d * f));
        assert!(close(acts, 40 * b * s * d + 8 * b * s * f));
    }

    #[test]
    fn model_inventory_covers_all_layers() {
        let cfg = TransformerConfig::gpt3_1_7b().with_layers(3);
        let inv = model_inventory(&cfg, 2);
        assert!(inv.iter().any(|t| t.layer == 0));
        assert!(inv.iter().any(|t| t.layer == 2));
        assert_eq!(inv.len() % 3, 0); // identical layers
        let per_layer = layer_inventory(&cfg, 0, 2).len();
        assert_eq!(inv.len(), 3 * per_layer);
    }

    #[test]
    fn t5_decoder_layers_have_cross_attention() {
        let cfg = TransformerConfig::t5_1_4b();
        let enc = layer_inventory(&cfg, 0, 1);
        let dec = layer_inventory(&cfg, 1, 1);
        assert!(dec.len() > enc.len());
        assert!(dec.iter().any(|t| t.name.contains("xattn")));
        assert!(!enc.iter().any(|t| t.name.contains("xattn")));
    }

    #[test]
    fn moe_replicates_expert_weights_only() {
        let cfg = TransformerConfig::t5_moe_1_2t().with_experts(4);
        let inv = layer_inventory(&cfg, 0, 1);
        let expert_weights = inv
            .iter()
            .filter(|t| t.name.contains("expert") && t.class == TensorClass::Param16);
        assert_eq!(expert_weights.count(), 4 * 2); // 4 experts × 2 matrices
                                                   // Activations don't scale with experts.
        let acts: u64 = inv
            .iter()
            .filter(|t| t.class == TensorClass::Activation)
            .map(|t| t.bytes)
            .sum();
        let cfg8 = cfg.clone().with_experts(8);
        let inv8 = layer_inventory(&cfg8, 0, 1);
        let acts8: u64 = inv8
            .iter()
            .filter(|t| t.class == TensorClass::Activation)
            .map(|t| t.bytes)
            .sum();
        assert_eq!(acts, acts8);
    }

    #[test]
    fn class_predicates() {
        assert!(TensorClass::Master32.is_model_state());
        assert!(TensorClass::Param16.is_model_state());
        assert!(!TensorClass::Activation.is_model_state());
        assert!(TensorClass::Momentum32.is_optimizer_state());
        assert!(!TensorClass::Grad16.is_optimizer_state());
    }

    #[test]
    fn tensor_names_are_unique() {
        let cfg = TransformerConfig::t5_27b().with_layers(2);
        let inv = model_inventory(&cfg, 1);
        let mut names: Vec<_> = inv.iter().map(|t| &t.name).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), inv.len());
    }
}
