//! Closed-form memory footprints of one Transformer layer — Table 1 of the
//! paper, under mixed-precision training with the Adam optimizer.
//!
//! The paper's conventions (Section 2.2):
//! * **Params** counts FP16 parameters *and* their FP16 gradients
//!   ("2 (forward and backward)"), i.e. 4 bytes per parameter;
//! * **Acts** counts FP16 activations and activation gradients;
//! * **Optims** counts FP32 master parameter + Adam momentum + variance,
//!   i.e. 12 bytes per parameter;
//! * small tensors (LayerNorm parameters, attention-score vectors) are shown
//!   per-row but dropped from the totals.
//!
//! Totals for one GPT layer (Table 1, bottom row):
//! `Params = 16·d² + 8·d·d_ffn`, `Acts = 40·b·s·d + 8·b·s·d_ffn`,
//! `Optims = 48·d² + 24·d·d_ffn`.

use crate::config::{ModelFamily, TransformerConfig};
use serde::Serialize;

/// One row of Table 1: the footprint of a single operation inside the layer.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct OpFootprint {
    /// Which block the op belongs to ("Attn" / "FFN" in Table 1).
    pub block: &'static str,
    /// Operation name as in Table 1 ("Linear(Q,K,V)", "MatMul", ...).
    pub op: &'static str,
    /// FP16 parameters + gradients, in bytes.
    pub params_bytes: u64,
    /// FP16 activations + activation gradients, in bytes.
    pub acts_bytes: u64,
    /// FP32 optimizer states (master + momentum + variance), in bytes.
    pub optims_bytes: u64,
}

/// The full footprint of one Transformer layer.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct LayerFootprint {
    pub ops: Vec<OpFootprint>,
    /// Totals using the paper's simplification (small tensors dropped).
    pub params_total: u64,
    pub acts_total: u64,
    pub optims_total: u64,
}

impl LayerFootprint {
    /// All bytes of persistent model states for this layer (params+optims).
    pub fn model_state_total(&self) -> u64 {
        self.params_total + self.optims_total
    }

    /// Exact sums over all rows, including the small tensors the paper's
    /// totals drop. Used to bound the approximation error.
    pub fn exact_totals(&self) -> (u64, u64, u64) {
        let p = self.ops.iter().map(|o| o.params_bytes).sum();
        let a = self.ops.iter().map(|o| o.acts_bytes).sum();
        let o = self.ops.iter().map(|o| o.optims_bytes).sum();
        (p, a, o)
    }
}

/// Compute Table 1 for one GPT layer of the given geometry at batch size `b`
/// and sequence length `s`. Every row reproduces the formulas in the table.
pub fn gpt_layer_footprint(d_m: u64, d_ffn: u64, b: u64, s: u64) -> LayerFootprint {
    let ops = vec![
        // --- Attention block -------------------------------------------
        OpFootprint {
            block: "Attn",
            op: "Linear(Q,K,V)",
            params_bytes: 12 * d_m * d_m, // 3 mats × (p+g) × 2B
            acts_bytes: 12 * b * s * d_m, // {Q,K,V} × (fwd+bwd) × 2B
            optims_bytes: 36 * d_m * d_m, // 3 mats × 3 states × 4B
        },
        OpFootprint {
            block: "Attn",
            op: "MatMul", // Q·Kᵀ attention scores
            params_bytes: 0,
            acts_bytes: 4 * b * s, // the paper's simplified b×s score shape
            optims_bytes: 0,
        },
        OpFootprint {
            block: "Attn",
            op: "ScaledMaskSoftmax", // fused Scale+Mask+Softmax kernel
            params_bytes: 0,
            acts_bytes: 4 * b * s,
            optims_bytes: 0,
        },
        OpFootprint {
            block: "Attn",
            op: "MatMul", // scores · V
            params_bytes: 0,
            acts_bytes: 4 * b * s * d_m,
            optims_bytes: 0,
        },
        OpFootprint {
            block: "Attn",
            op: "Linear", // output projection
            params_bytes: 4 * d_m * d_m,
            acts_bytes: 4 * b * s * d_m,
            optims_bytes: 12 * d_m * d_m,
        },
        OpFootprint {
            block: "Attn",
            op: "Add", // residual
            params_bytes: 0,
            acts_bytes: 4 * b * s * d_m,
            optims_bytes: 0,
        },
        OpFootprint {
            block: "Attn",
            op: "LayerNorm",
            params_bytes: 4 * d_m,
            acts_bytes: 4 * b * s * d_m,
            optims_bytes: 12 * d_m,
        },
        // --- FFN block ---------------------------------------------------
        OpFootprint {
            block: "FFN",
            op: "Linear", // up-projection
            params_bytes: 4 * d_m * d_ffn,
            acts_bytes: 4 * b * s * d_ffn,
            optims_bytes: 12 * d_m * d_ffn,
        },
        OpFootprint {
            block: "FFN",
            op: "GeLU",
            params_bytes: 0,
            acts_bytes: 4 * b * s * d_ffn,
            optims_bytes: 0,
        },
        OpFootprint {
            block: "FFN",
            op: "Linear", // down-projection
            params_bytes: 4 * d_m * d_ffn,
            acts_bytes: 4 * b * s * d_m,
            optims_bytes: 12 * d_m * d_ffn,
        },
        OpFootprint {
            block: "FFN",
            op: "Add",
            params_bytes: 0,
            acts_bytes: 4 * b * s * d_m,
            optims_bytes: 0,
        },
        OpFootprint {
            block: "FFN",
            op: "LayerNorm",
            params_bytes: 4 * d_m,
            acts_bytes: 4 * b * s * d_m,
            optims_bytes: 12 * d_m,
        },
    ];
    LayerFootprint {
        ops,
        params_total: 16 * d_m * d_m + 8 * d_m * d_ffn,
        acts_total: 40 * b * s * d_m + 8 * b * s * d_ffn,
        optims_total: 48 * d_m * d_m + 24 * d_m * d_ffn,
    }
}

/// Footprint of the whole model at batch size `b`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct ModelFootprint {
    pub layer: LayerFootprint,
    pub layers: usize,
    pub params_total: u64,
    pub acts_total: u64,
    pub optims_total: u64,
}

impl ModelFootprint {
    /// Derive the footprint of `config` at batch size `b`.
    ///
    /// For T5 models the extra cross-attention sub-layer in decoder blocks is
    /// accounted by scaling the attention terms by 3/2 (half the blocks carry
    /// two attention networks), consistently with
    /// [`TransformerConfig::attn_params_per_layer`]. For MoE models, FFN
    /// parameter/optimizer terms are multiplied by the expert count while
    /// activation terms are not (tokens visit one expert each).
    pub fn of(config: &TransformerConfig, b: u64) -> Self {
        let d = config.d_model as u64;
        let f = config.d_ffn as u64;
        let s = config.seq_len as u64;
        let layer = gpt_layer_footprint(d, f, b, s);
        let attn_scale_num = match config.family {
            ModelFamily::Gpt => 1u64,
            ModelFamily::T5 | ModelFamily::T5Moe => 3,
        };
        let attn_scale_den = match config.family {
            ModelFamily::Gpt => 1u64,
            ModelFamily::T5 | ModelFamily::T5Moe => 2,
        };
        let experts = config.experts.max(1) as u64;
        // Split layer totals into attention-ish (d²) and FFN-ish (d·d_ffn)
        // components so each can scale independently.
        let attn_params = 16 * d * d;
        let ffn_params = 8 * d * f;
        let attn_optims = 48 * d * d;
        let ffn_optims = 24 * d * f;
        let params_per_layer = attn_params * attn_scale_num / attn_scale_den + ffn_params * experts;
        let optims_per_layer = attn_optims * attn_scale_num / attn_scale_den + ffn_optims * experts;
        let acts_per_layer = layer.acts_total; // activation volume is per token-path
        let n = config.layers as u64;
        Self {
            layer,
            layers: config.layers,
            params_total: n * params_per_layer,
            acts_total: n * acts_per_layer,
            optims_total: n * optims_per_layer,
        }
    }

    /// Persistent model states for the whole model.
    pub fn model_state_total(&self) -> u64 {
        self.params_total + self.optims_total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use angel_hw::GIB;

    const D: u64 = 12288; // GPT-3 175B geometry used in Section 2.2
    const F: u64 = 49152;

    #[test]
    fn table1_rows_match_formulas() {
        let fp = gpt_layer_footprint(D, F, 1, 2048);
        let qkv = &fp.ops[0];
        assert_eq!(qkv.params_bytes, 12 * D * D);
        assert_eq!(qkv.acts_bytes, 12 * 2048 * D);
        assert_eq!(qkv.optims_bytes, 36 * D * D);
        let ffn_up = &fp.ops[7];
        assert_eq!(ffn_up.params_bytes, 4 * D * F);
        assert_eq!(ffn_up.acts_bytes, 4 * 2048 * F);
        assert_eq!(ffn_up.optims_bytes, 12 * D * F);
    }

    #[test]
    fn table1_totals_match_bottom_row() {
        let b = 4;
        let s = 2048;
        let fp = gpt_layer_footprint(D, F, b, s);
        assert_eq!(fp.params_total, 16 * D * D + 8 * D * F);
        assert_eq!(fp.acts_total, 40 * b * s * D + 8 * b * s * F);
        assert_eq!(fp.optims_total, 48 * D * D + 24 * D * F);
    }

    #[test]
    fn totals_drop_only_small_tensors() {
        // The paper's totals ignore LayerNorm params and score activations;
        // the relative error of that simplification must be tiny (<0.1%).
        let fp = gpt_layer_footprint(D, F, 1, 2048);
        let (p, a, o) = fp.exact_totals();
        let rel = |exact: u64, total: u64| (exact as f64 - total as f64).abs() / exact as f64;
        assert!(rel(p, fp.params_total) < 1e-3);
        assert!(rel(a, fp.acts_total) < 1e-3);
        assert!(rel(o, fp.optims_total) < 1e-3);
    }

    #[test]
    fn section22_gpt3_175b_analysis() {
        // "For the GPT-3 175B, the Params, Acts and Optims consumes 648GB,
        // 162GB, and 1944GB, respectively, when batch size is 1, sequence
        // length is 2048, d_m = 12288 and d_ffn = 49152."
        let cfg = crate::TransformerConfig::gpt3_175b_openai().with_seq_len(2048);
        let fp = ModelFootprint::of(&cfg, 1);
        let to_gb = |x: u64| x as f64 / GIB as f64;
        assert!(
            (to_gb(fp.params_total) - 648.0).abs() / 648.0 < 0.02,
            "{}",
            to_gb(fp.params_total)
        );
        assert!(
            (to_gb(fp.acts_total) - 162.0).abs() / 162.0 < 0.02,
            "{}",
            to_gb(fp.acts_total)
        );
        assert!(
            (to_gb(fp.optims_total) - 1944.0).abs() / 1944.0 < 0.02,
            "{}",
            to_gb(fp.optims_total)
        );
    }

    #[test]
    fn optims_are_three_times_params() {
        // 12 bytes of FP32 state vs 4 bytes of FP16 param+grad per parameter.
        let fp = gpt_layer_footprint(D, F, 1, 2048);
        assert_eq!(fp.optims_total, 3 * fp.params_total);
    }

    #[test]
    fn acts_scale_linearly_with_batch() {
        let f1 = gpt_layer_footprint(D, F, 1, 2048);
        let f8 = gpt_layer_footprint(D, F, 8, 2048);
        assert_eq!(f8.acts_total, 8 * f1.acts_total);
        assert_eq!(f8.params_total, f1.params_total);
        assert_eq!(f8.optims_total, f1.optims_total);
    }

    #[test]
    fn moe_scales_states_not_acts() {
        let dense = crate::TransformerConfig::t5_1_4b();
        let moe = dense.clone().with_experts(8);
        let fd = ModelFootprint::of(&dense, 4);
        let fm = ModelFootprint::of(&moe, 4);
        assert!(fm.params_total > 7 * fd.params_total / 2); // FFN dominates
        assert_eq!(fm.acts_total, fd.acts_total);
    }

    #[test]
    fn model_footprint_consistency_with_config_params() {
        // ModelFootprint's byte totals must equal the config's parameter
        // count × the per-parameter byte constants (up to the ignored norms).
        let cfg = crate::TransformerConfig::gpt3_28b();
        let fp = ModelFootprint::of(&cfg, 1);
        let params = cfg.total_params();
        let approx = fp.params_total + fp.optims_total;
        let exact = params * crate::TransformerConfig::STATE_BYTES_PER_PARAM;
        assert!((approx as f64 - exact as f64).abs() / (exact as f64) < 1e-3);
    }
}
