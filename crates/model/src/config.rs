//! Transformer architecture descriptions and the Table 4 model zoo.
//!
//! Table 4 of the paper lists the eleven models used in the evaluation. We
//! encode it verbatim. Note that the *names* in the paper are nominal: for a
//! few entries the parameter count computed from the listed geometry does not
//! exactly match the name (e.g. "GPT3-30B" with 64 × d=8192 layers computes
//! to ~51B dense parameters). Where an experiment depends on the actual size
//! (capacity searches, Table 5) we always use the *computed* count from the
//! geometry, never the nominal name, and say so in EXPERIMENTS.md.

use serde::{Deserialize, Serialize};

/// Model family — affects layer structure (decoder-only vs. encoder-decoder)
/// and whether FFNs are replaced by expert layers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ModelFamily {
    /// Decoder-only (GPT-3 style): each layer = self-attention + FFN.
    Gpt,
    /// Encoder–decoder (T5 style). We model a decoder block with an extra
    /// cross-attention sub-layer.
    T5,
    /// T5 with Mixture-of-Experts FFNs (Switch-Transformer style).
    T5Moe,
}

/// Architecture of one Transformer model, in the paper's notation:
/// `b` batch size, `s` sequence length, `d_m` (`d_model`) hidden size,
/// `d_ffn` FFN hidden size.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TransformerConfig {
    pub name: String,
    pub family: ModelFamily,
    /// Number of Transformer blocks (`#Layer` in Table 4).
    pub layers: usize,
    /// Attention heads (`#Head`).
    pub heads: usize,
    /// Embedding hidden size (`d_Model`).
    pub d_model: usize,
    /// FFN hidden size (`d_FFN`).
    pub d_ffn: usize,
    /// Experts per MoE layer (`#Expert`); 0 for dense models.
    pub experts: usize,
    /// Sequence length. The paper's analysis in Section 2.2 uses 2048.
    pub seq_len: usize,
    /// Vocabulary size (embeddings are excluded from the paper's memory
    /// analysis, but the FLOPs model can include the LM head).
    pub vocab: usize,
}

impl TransformerConfig {
    /// A fully custom config.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        name: impl Into<String>,
        family: ModelFamily,
        layers: usize,
        heads: usize,
        d_model: usize,
        d_ffn: usize,
        experts: usize,
    ) -> Self {
        Self {
            name: name.into(),
            family,
            layers,
            heads,
            d_model,
            d_ffn,
            experts,
            seq_len: 2048,
            vocab: 51200,
        }
    }

    /// Builder-style override of the sequence length.
    pub fn with_seq_len(mut self, seq_len: usize) -> Self {
        self.seq_len = seq_len;
        self
    }

    /// Builder-style override of the layer count — the capacity experiments
    /// "increase the number of transformer blocks and fix other model
    /// settings" (Section 6.2).
    pub fn with_layers(mut self, layers: usize) -> Self {
        self.layers = layers;
        self
    }

    /// Builder-style override of the expert count (Figure 9 scales experts
    /// with the number of GPUs).
    pub fn with_experts(mut self, experts: usize) -> Self {
        self.experts = experts;
        self
    }

    // ----- Table 4 presets, verbatim ------------------------------------

    pub fn gpt3_1_7b() -> Self {
        Self::new("GPT3-1.7B", ModelFamily::Gpt, 24, 24, 2304, 9216, 0)
    }

    pub fn gpt3_13b() -> Self {
        Self::new("GPT3-13B", ModelFamily::Gpt, 40, 40, 5140, 20506, 0)
    }

    pub fn gpt3_28b() -> Self {
        Self::new("GPT3-28B", ModelFamily::Gpt, 26, 128, 8192, 32768, 0)
    }

    pub fn gpt3_30b() -> Self {
        Self::new("GPT3-30B", ModelFamily::Gpt, 64, 36, 8192, 32768, 0)
    }

    pub fn gpt3_55b() -> Self {
        Self::new("GPT3-55B", ModelFamily::Gpt, 68, 128, 8192, 32768, 0)
    }

    pub fn gpt3_120b() -> Self {
        Self::new("GPT3-120B", ModelFamily::Gpt, 64, 96, 12288, 49152, 0)
    }

    pub fn gpt3_175b() -> Self {
        Self::new("GPT3-175B", ModelFamily::Gpt, 70, 112, 14336, 57344, 0)
    }

    /// The canonical GPT-3 175B geometry from the original OpenAI paper,
    /// used by Section 2.2's memory analysis and Table 2's tensor-size
    /// distribution (d_m = 12288, d_ffn = 49152).
    pub fn gpt3_175b_openai() -> Self {
        Self::new(
            "GPT3-175B(openai)",
            ModelFamily::Gpt,
            96,
            96,
            12288,
            49152,
            0,
        )
    }

    pub fn t5_1_4b() -> Self {
        Self::new("T5-1.4B", ModelFamily::T5, 16, 16, 1024, 16384, 0)
    }

    pub fn t5_27b() -> Self {
        Self::new("T5-27B", ModelFamily::T5, 28, 64, 4096, 16384, 0)
    }

    pub fn t5_58b() -> Self {
        Self::new("T5-58B", ModelFamily::T5, 60, 64, 4096, 16384, 0)
    }

    pub fn t5_moe_1_2t() -> Self {
        Self::new("T5-MoE-1.2T", ModelFamily::T5Moe, 16, 16, 1024, 16384, 2304)
    }

    /// All Table 4 presets in row order.
    pub fn table4() -> Vec<Self> {
        vec![
            Self::gpt3_1_7b(),
            Self::gpt3_13b(),
            Self::gpt3_28b(),
            Self::gpt3_30b(),
            Self::gpt3_55b(),
            Self::gpt3_120b(),
            Self::gpt3_175b(),
            Self::t5_1_4b(),
            Self::t5_27b(),
            Self::t5_58b(),
            Self::t5_moe_1_2t(),
        ]
    }

    // ----- Derived quantities -------------------------------------------

    /// Whether this model replaces FFNs with expert layers.
    pub fn is_moe(&self) -> bool {
        self.experts > 0
    }

    /// Attention parameter count per block: Q, K, V and output projections,
    /// each `d_model × d_model` (biases folded in as in the paper, which
    /// ignores small tensors).
    pub fn attn_params_per_layer(&self) -> u64 {
        let d = self.d_model as u64;
        let per_attn = 4 * d * d;
        match self.family {
            ModelFamily::Gpt => per_attn,
            // Decoder blocks carry an extra cross-attention; we average the
            // encoder and decoder halves: (1 + 2) / 2 attention networks.
            ModelFamily::T5 | ModelFamily::T5Moe => per_attn * 3 / 2,
        }
    }

    /// FFN parameter count per block: two `d_model × d_ffn` matrices. For MoE
    /// models this is the size of **one** expert; multiply by
    /// [`TransformerConfig::experts`] for the full expert bank.
    pub fn ffn_params_per_expert(&self) -> u64 {
        2 * self.d_model as u64 * self.d_ffn as u64
    }

    /// LayerNorm parameters per block (weights + biases for the two norms —
    /// the "4·d_m" the paper explicitly ignores in totals).
    pub fn norm_params_per_layer(&self) -> u64 {
        4 * self.d_model as u64
    }

    /// Dense parameter count per block, with every expert counted once for
    /// MoE models. Embeddings are excluded, matching the paper ("we do not
    /// take the embedding_look_up and loss function into consideration").
    pub fn params_per_layer(&self) -> u64 {
        let experts = self.experts.max(1) as u64;
        self.attn_params_per_layer()
            + experts * self.ffn_params_per_expert()
            + self.norm_params_per_layer()
    }

    /// Total parameter count of the model (all layers, all experts).
    pub fn total_params(&self) -> u64 {
        self.layers as u64 * self.params_per_layer()
    }

    /// Bytes of *model states* per parameter under mixed-precision Adam:
    /// FP16 parameter (2) + FP16 gradient (2) + FP32 master (4) + FP32
    /// momentum (4) + FP32 variance (4) = 16. This is the constant behind
    /// Table 1's `Params + Optims` columns.
    pub const STATE_BYTES_PER_PARAM: u64 = 16;

    /// Total bytes of model states (parameters + gradients + optimizer).
    pub fn model_state_bytes(&self) -> u64 {
        self.total_params() * Self::STATE_BYTES_PER_PARAM
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_presets_match_paper_rows() {
        let t = TransformerConfig::table4();
        assert_eq!(t.len(), 11);
        assert_eq!(
            (t[0].layers, t[0].heads, t[0].d_model, t[0].d_ffn),
            (24, 24, 2304, 9216)
        );
        assert_eq!(
            (t[6].layers, t[6].heads, t[6].d_model, t[6].d_ffn),
            (70, 112, 14336, 57344)
        );
        assert_eq!(t[10].experts, 2304);
        assert!(t[10].is_moe());
        assert!(!t[0].is_moe());
    }

    #[test]
    fn gpt_params_per_layer_formula() {
        // For d_ffn = 4·d_model a GPT block has 12·d² parameters (+ norms).
        let c = TransformerConfig::gpt3_28b();
        let d = c.d_model as u64;
        assert_eq!(c.attn_params_per_layer(), 4 * d * d);
        assert_eq!(c.ffn_params_per_expert(), 8 * d * d);
        assert_eq!(c.params_per_layer(), 12 * d * d + 4 * d);
    }

    #[test]
    fn gpt3_175b_openai_is_about_175b() {
        // 96 layers × 12·12288² ≈ 174B — the canonical figure (embeddings
        // excluded, hence slightly under 175B).
        let c = TransformerConfig::gpt3_175b_openai();
        let p = c.total_params();
        assert!(p > 170_000_000_000 && p < 180_000_000_000, "params = {p}");
    }

    #[test]
    fn model_state_bytes_match_section22_analysis() {
        // Section 2.2: GPT-3 175B Params = 648 GB, Optims = 1944 GB
        // (so states = 2592 GB = params × 16 bytes ≈ 162e9 × 16).
        let c = TransformerConfig::gpt3_175b_openai();
        let gib = 1u64 << 30;
        let params_bytes = c.total_params() * 4; // fp16 p + g
        let optim_bytes = c.total_params() * 12;
        // The paper's 648/1944 GB figures are for the 96-layer geometry
        // without embeddings; allow 5% slack for its rounding.
        let params_gb = params_bytes as f64 / gib as f64;
        let optim_gb = optim_bytes as f64 / gib as f64;
        assert!(
            (params_gb - 648.0).abs() / 648.0 < 0.05,
            "params = {params_gb} GB"
        );
        assert!(
            (optim_gb - 1944.0).abs() / 1944.0 < 0.05,
            "optims = {optim_gb} GB"
        );
    }

    #[test]
    fn moe_total_params_reach_1_2t() {
        let c = TransformerConfig::t5_moe_1_2t();
        // 16 layers × 2304 experts × 2×1024×16384 ≈ 1.24T (attention adds a
        // rounding error on top).
        let p = c.total_params();
        assert!(
            p > 1_100_000_000_000 && p < 1_350_000_000_000,
            "params = {p}"
        );
    }

    #[test]
    fn builder_overrides() {
        let c = TransformerConfig::gpt3_28b()
            .with_layers(68)
            .with_seq_len(1024)
            .with_experts(4);
        assert_eq!(c.layers, 68);
        assert_eq!(c.seq_len, 1024);
        assert_eq!(c.experts, 4);
    }

    #[test]
    fn t5_has_cross_attention_overhead() {
        let gpt = TransformerConfig::new("g", ModelFamily::Gpt, 1, 16, 1024, 4096, 0);
        let t5 = TransformerConfig::new("t", ModelFamily::T5, 1, 16, 1024, 4096, 0);
        assert!(t5.attn_params_per_layer() > gpt.attn_params_per_layer());
    }
}
