//! Memory substrate for the Angel-PTM reproduction.
//!
//! Section 3.2 of the paper motivates the Page abstraction by observing that
//! coarse memory management — per-tensor allocation (PyTorch/TensorFlow-style)
//! or oversized chunks (PatrickStar) — fragments GPU memory as model states
//! move between tiers: "As the training process continues and the model state
//! is constantly moved, more and more memory fragmentation is generated,
//! leading to inefficient memory usage."
//!
//! This crate provides the pieces needed to *measure* that claim:
//!
//! * [`BytePool`] — a simulated contiguous address space with an explicit
//!   free-list and exhaustive invariant checking;
//! * three baseline allocators behind the [`AddressAllocator`] trait:
//!   [`BestFitAllocator`] (TensorFlow's BFC with coalescing),
//!   [`ChunkAllocator`] (PatrickStar's fixed chunks) and
//!   [`NaiveAllocator`] (first-fit per-tensor allocation, PyTorch-like);
//! * [`FragmentationStats`] — external/internal fragmentation and peak-usage
//!   accounting shared by all allocators, including Angel-PTM's page
//!   allocator in `angel-core`.
//!
//! The allocators here manage *simulated addresses* (offsets into a pool),
//! not real memory: fragmentation is a property of the address arithmetic,
//! so nothing is lost by the simulation, and pools of hundreds of gigabytes
//! cost nothing to model.

// Unit tests keep panicking assertions; library code is covered by the
// workspace-wide unwrap/expect ban (clippy.toml disallowed-methods).
#![cfg_attr(test, allow(clippy::disallowed_methods))]

pub mod alloc;
pub mod pool;
pub mod reuse;
pub mod segfit;
pub mod stats;

pub use alloc::{
    AddressAllocator, AllocError, Allocation, BestFitAllocator, ChunkAllocator, NaiveAllocator,
};
pub use pool::{BytePool, Extent};
pub use reuse::PooledAllocator;
pub use segfit::SegregatedFitAllocator;
pub use stats::FragmentationStats;

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// Drive any allocator with a random allocate/free trace and check the
    /// shared invariants: no overlap, in-bounds, used+free accounting.
    fn exercise(alloc: &mut dyn AddressAllocator, ops: &[(bool, u64)]) {
        let mut live: Vec<Allocation> = Vec::new();
        for &(is_alloc, size) in ops {
            if is_alloc || live.is_empty() {
                if let Ok(a) = alloc.allocate(size.max(1)) {
                    // In-bounds.
                    assert!(a.offset + a.size <= alloc.capacity());
                    // No overlap with any live allocation.
                    for b in &live {
                        let disjoint =
                            a.offset + a.size <= b.offset || b.offset + b.size <= a.offset;
                        assert!(disjoint, "overlap: {a:?} vs {b:?}");
                    }
                    live.push(a);
                }
            } else {
                let idx = (size as usize) % live.len();
                let victim = live.swap_remove(idx);
                alloc.free(victim);
            }
            let stats = alloc.stats();
            assert!(stats.used_bytes <= alloc.capacity());
            assert!(stats.peak_used_bytes >= stats.used_bytes);
        }
        for a in live.drain(..) {
            alloc.free(a);
        }
        // After freeing everything, no bytes may remain in use.
        assert_eq!(alloc.stats().used_bytes, 0);
    }

    proptest! {
        #[test]
        fn best_fit_invariants(ops in proptest::collection::vec((any::<bool>(), 1u64..64_000), 1..200)) {
            let mut a = BestFitAllocator::new(1 << 20);
            exercise(&mut a, &ops);
        }

        #[test]
        fn naive_invariants(ops in proptest::collection::vec((any::<bool>(), 1u64..64_000), 1..200)) {
            let mut a = NaiveAllocator::new(1 << 20);
            exercise(&mut a, &ops);
        }

        #[test]
        fn chunk_invariants(ops in proptest::collection::vec((any::<bool>(), 1u64..32_000), 1..200)) {
            let mut a = ChunkAllocator::new(1 << 20, 64_000);
            exercise(&mut a, &ops);
        }

        #[test]
        fn segfit_invariants(ops in proptest::collection::vec((any::<bool>(), 1u64..64_000), 1..200)) {
            let mut a = SegregatedFitAllocator::new(1 << 21);
            exercise(&mut a, &ops);
        }

        #[test]
        fn pooled_invariants(ops in proptest::collection::vec((any::<bool>(), 1u64..64_000), 1..200)) {
            let mut a = PooledAllocator::new(BestFitAllocator::new(1 << 21));
            exercise(&mut a, &ops);
        }

        #[test]
        fn pooled_capped_invariants(ops in proptest::collection::vec((any::<bool>(), 1u64..64_000), 1..200)) {
            // A tight cache cap forces the LRU-trim path constantly.
            let mut a = PooledAllocator::with_config(BestFitAllocator::new(1 << 21), 256, 1 << 16);
            exercise(&mut a, &ops);
            prop_assert!(a.cached_bytes() <= 1 << 16);
        }
    }
}
