//! A simulated contiguous address space with an explicit free-list.
//!
//! [`BytePool`] is the shared bookkeeping core under every allocator in this
//! crate: it tracks which extents of a `[0, capacity)` address range are free,
//! supports splitting on allocation and coalescing on free, and can answer the
//! fragmentation questions the motivation experiment asks (largest free block
//! vs. total free bytes).

use serde::{Deserialize, Serialize};

/// A half-open `[offset, offset + size)` range of simulated addresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Extent {
    pub offset: u64,
    pub size: u64,
}

impl Extent {
    pub fn new(offset: u64, size: u64) -> Self {
        Self { offset, size }
    }

    pub fn end(&self) -> u64 {
        self.offset + self.size
    }

    /// Whether `self` and `other` touch or overlap (so they could coalesce).
    pub fn adjacent_or_overlapping(&self, other: &Extent) -> bool {
        self.offset <= other.end() && other.offset <= self.end()
    }
}

/// A `[0, capacity)` address range with a sorted, coalesced free-list.
///
/// Invariants (checked by `debug_assert_invariants` and the property tests):
/// * free extents are sorted by offset, non-empty, non-overlapping and
///   non-adjacent (adjacent extents are always merged);
/// * the sum of free extents plus `used_bytes` equals `capacity`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BytePool {
    capacity: u64,
    /// Sorted by offset; maximally coalesced.
    free: Vec<Extent>,
    used_bytes: u64,
}

impl BytePool {
    /// A pool covering `[0, capacity)`, fully free.
    pub fn new(capacity: u64) -> Self {
        let free = if capacity > 0 {
            vec![Extent::new(0, capacity)]
        } else {
            Vec::new()
        };
        Self {
            capacity,
            free,
            used_bytes: 0,
        }
    }

    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    pub fn used_bytes(&self) -> u64 {
        self.used_bytes
    }

    pub fn free_bytes(&self) -> u64 {
        self.capacity - self.used_bytes
    }

    /// The largest single free extent — the biggest allocation that can
    /// currently succeed. `free_bytes() - largest_free_extent()` is the
    /// classic external-fragmentation measure.
    pub fn largest_free_extent(&self) -> u64 {
        self.free.iter().map(|e| e.size).max().unwrap_or(0)
    }

    /// Number of discontiguous free extents.
    pub fn num_free_extents(&self) -> usize {
        self.free.len()
    }

    /// Iterate over the free extents in address order.
    pub fn free_extents(&self) -> impl Iterator<Item = &Extent> {
        self.free.iter()
    }

    /// Carve `size` bytes from the free extent at `free_index`, taking the
    /// low end of the extent. Panics if the extent is too small.
    fn carve(&mut self, free_index: usize, size: u64) -> Extent {
        let ext = self.free[free_index];
        assert!(ext.size >= size, "carve: extent too small");
        let out = Extent::new(ext.offset, size);
        if ext.size == size {
            self.free.remove(free_index);
        } else {
            self.free[free_index] = Extent::new(ext.offset + size, ext.size - size);
        }
        self.used_bytes += size;
        self.debug_assert_invariants();
        out
    }

    /// First-fit: take the lowest-addressed free extent that fits.
    pub fn allocate_first_fit(&mut self, size: u64) -> Option<Extent> {
        assert!(size > 0, "zero-sized allocation");
        let idx = self.free.iter().position(|e| e.size >= size)?;
        Some(self.carve(idx, size))
    }

    /// Best-fit: take the smallest free extent that fits (ties go to the
    /// lowest address because the free-list is offset-sorted). This is the
    /// allocation policy of TensorFlow's BFC allocator the paper cites.
    pub fn allocate_best_fit(&mut self, size: u64) -> Option<Extent> {
        assert!(size > 0, "zero-sized allocation");
        let idx = self
            .free
            .iter()
            .enumerate()
            .filter(|(_, e)| e.size >= size)
            .min_by_key(|(_, e)| e.size)
            .map(|(i, _)| i)?;
        Some(self.carve(idx, size))
    }

    /// Return an extent to the pool, coalescing with its neighbours.
    ///
    /// Panics (in debug builds) on double-free or out-of-bounds extents: these
    /// are always caller bugs, never recoverable conditions.
    pub fn free(&mut self, ext: Extent) {
        assert!(ext.size > 0, "freeing empty extent");
        assert!(ext.end() <= self.capacity, "freeing out-of-bounds extent");
        debug_assert!(
            !self
                .free
                .iter()
                .any(|f| f.offset < ext.end() && ext.offset < f.end()),
            "double free of {ext:?}"
        );
        // Insertion point in the sorted free-list.
        let pos = self.free.partition_point(|f| f.offset < ext.offset);
        let mut merged = ext;
        // Coalesce with predecessor.
        if pos > 0 && self.free[pos - 1].end() == merged.offset {
            let prev = self.free.remove(pos - 1);
            merged = Extent::new(prev.offset, prev.size + merged.size);
            // Removal shifted the insertion point left by one.
            return self.finish_free(pos - 1, merged, ext.size);
        }
        self.finish_free(pos, merged, ext.size);
    }

    fn finish_free(&mut self, pos: usize, mut merged: Extent, freed: u64) {
        // Coalesce with successor.
        if pos < self.free.len() && merged.end() == self.free[pos].offset {
            let next = self.free.remove(pos);
            merged = Extent::new(merged.offset, merged.size + next.size);
        }
        self.free.insert(pos, merged);
        self.used_bytes -= freed;
        self.debug_assert_invariants();
    }

    fn debug_assert_invariants(&self) {
        #[cfg(debug_assertions)]
        {
            let mut total = 0;
            for w in self.free.windows(2) {
                assert!(
                    w[0].end() < w[1].offset,
                    "free-list not coalesced/sorted: {w:?}"
                );
            }
            for e in &self.free {
                assert!(e.size > 0);
                assert!(e.end() <= self.capacity);
                total += e.size;
            }
            assert_eq!(
                total + self.used_bytes,
                self.capacity,
                "byte accounting broken"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_pool_is_one_extent() {
        let p = BytePool::new(1000);
        assert_eq!(p.free_bytes(), 1000);
        assert_eq!(p.num_free_extents(), 1);
        assert_eq!(p.largest_free_extent(), 1000);
    }

    #[test]
    fn first_fit_takes_lowest_address() {
        let mut p = BytePool::new(1000);
        let a = p.allocate_first_fit(100).unwrap();
        assert_eq!(a.offset, 0);
        let b = p.allocate_first_fit(100).unwrap();
        assert_eq!(b.offset, 100);
        assert_eq!(p.used_bytes(), 200);
    }

    #[test]
    fn best_fit_prefers_tightest_hole() {
        let mut p = BytePool::new(1000);
        let a = p.allocate_first_fit(100).unwrap(); // [0,100)
        let b = p.allocate_first_fit(50).unwrap(); // [100,150)
        let _c = p.allocate_first_fit(100).unwrap(); // [150,250)
        p.free(a); // hole of 100 at 0
        p.free(b); // merges? no: a=[0,100), b=[100,150) adjacent -> merges to [0,150)
        assert_eq!(p.num_free_extents(), 2); // [0,150) and [250,1000)
                                             // Re-fragment: take 50 from the front hole.
        let d = p.allocate_best_fit(120).unwrap();
        // Best fit chooses the 150-byte hole, not the 750-byte tail.
        assert_eq!(d.offset, 0);
    }

    #[test]
    fn coalescing_merges_both_sides() {
        let mut p = BytePool::new(300);
        let a = p.allocate_first_fit(100).unwrap();
        let b = p.allocate_first_fit(100).unwrap();
        let c = p.allocate_first_fit(100).unwrap();
        p.free(a);
        p.free(c);
        assert_eq!(p.num_free_extents(), 2);
        p.free(b); // merges with both neighbours
        assert_eq!(p.num_free_extents(), 1);
        assert_eq!(p.largest_free_extent(), 300);
    }

    #[test]
    fn allocation_failure_leaves_pool_untouched() {
        let mut p = BytePool::new(100);
        let _a = p.allocate_first_fit(60).unwrap();
        assert!(p.allocate_first_fit(50).is_none());
        assert_eq!(p.used_bytes(), 60);
        assert!(p.allocate_best_fit(50).is_none());
    }

    #[test]
    fn external_fragmentation_is_observable() {
        // Classic checkerboard: free every other block; total free is large
        // but the largest extent is small.
        let mut p = BytePool::new(1000);
        let blocks: Vec<_> = (0..10)
            .map(|_| p.allocate_first_fit(100).unwrap())
            .collect();
        for (i, b) in blocks.into_iter().enumerate() {
            if i % 2 == 0 {
                p.free(b);
            }
        }
        assert_eq!(p.free_bytes(), 500);
        assert_eq!(p.largest_free_extent(), 100);
        assert_eq!(p.num_free_extents(), 5);
    }

    #[test]
    fn zero_capacity_pool() {
        let mut p = BytePool::new(0);
        assert_eq!(p.free_bytes(), 0);
        assert!(p.allocate_first_fit(1).is_none());
    }
}
