//! Size-class reuse pooling over any [`AddressAllocator`].
//!
//! The paper's Section 3.2 observation is that offload workloads *churn*: the
//! same tensor shapes are allocated and released every iteration as model
//! states bounce between tiers. A caching layer that keeps released blocks
//! binned by size class turns that churn into O(1) pops from a free list —
//! the policy real caching allocators (PyTorch's CUDA caching allocator,
//! CNMeM) use to avoid round-trips to the driver.
//!
//! [`PooledAllocator`] wraps an inner allocator and interposes a cache:
//!
//! * requests round up to a power-of-two **size class** (`min_class`
//!   floor), so any cached slot of a class serves any request of that class;
//! * `free` parks the slot in its class bin instead of returning it to the
//!   inner allocator (LIFO within a bin — the hottest slot is reused first);
//! * when the cache exceeds `max_cached_bytes`, or when the inner allocator
//!   cannot satisfy a miss, least-recently-used bins are flushed back to the
//!   inner allocator (which coalesces) until the request fits.
//!
//! The trade is explicit and measurable: pooling adds the size-class rounding
//! tax (internal fragmentation, same as [`SegregatedFitAllocator`]) and holds
//! freed memory hostage from other consumers, in exchange for steady-state
//! reuse hits that never touch the inner free-list search. `BENCH_alloc`
//! in `angel-bench` quantifies both sides on churn workloads.
//!
//! [`SegregatedFitAllocator`]: crate::SegregatedFitAllocator

use crate::alloc::{AddressAllocator, AllocError, Allocation};
use crate::stats::FragmentationStats;
use std::collections::BTreeMap;

/// Default size-class floor: requests below 256 B round up to 256 B.
pub const DEFAULT_MIN_CLASS: u64 = 256;

/// One size class's cached slots.
#[derive(Debug, Clone, Default)]
struct Bin {
    /// Parked allocations, all with `reserved == class`. LIFO: the most
    /// recently freed slot is reused first (warmest address).
    slots: Vec<Allocation>,
    /// Logical clock of the last hit or free; bins with the oldest
    /// `last_used` are flushed first under pressure.
    last_used: u64,
}

/// Size-class reuse cache over an inner [`AddressAllocator`].
#[derive(Debug, Clone)]
pub struct PooledAllocator<A: AddressAllocator> {
    inner: A,
    min_class: u64,
    /// Cap on bytes parked in bins; `u64::MAX` means unbounded.
    max_cached_bytes: u64,
    cached_bytes: u64,
    clock: u64,
    bins: BTreeMap<u64, Bin>,
    stats: FragmentationStats,
    hits: u64,
    misses: u64,
    trims: u64,
}

impl<A: AddressAllocator> PooledAllocator<A> {
    /// Wrap `inner` with an unbounded cache and the default class floor.
    pub fn new(inner: A) -> Self {
        Self::with_config(inner, DEFAULT_MIN_CLASS, u64::MAX)
    }

    /// `min_class` must be a power of two; `max_cached_bytes` bounds the
    /// bytes parked in bins (0 disables caching entirely — every free goes
    /// straight to the inner allocator, the A/B baseline).
    pub fn with_config(inner: A, min_class: u64, max_cached_bytes: u64) -> Self {
        assert!(min_class.is_power_of_two());
        let capacity = inner.capacity();
        Self {
            inner,
            min_class,
            max_cached_bytes,
            cached_bytes: 0,
            clock: 0,
            bins: BTreeMap::new(),
            stats: FragmentationStats::new(capacity),
            hits: 0,
            misses: 0,
            trims: 0,
        }
    }

    /// Round a request up to its size class.
    pub fn class_of(&self, size: u64) -> u64 {
        size.max(self.min_class).next_power_of_two()
    }

    /// Cache hits (requests served from a bin without touching the inner
    /// allocator).
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cache misses (requests that went to the inner allocator).
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Number of bins flushed back to the inner allocator under pressure.
    pub fn trims(&self) -> u64 {
        self.trims
    }

    /// Bytes currently parked in bins, invisible to the inner allocator.
    pub fn cached_bytes(&self) -> u64 {
        self.cached_bytes
    }

    /// Fraction of allocations served from the cache, in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Return every cached slot to the inner allocator. Returns the bytes
    /// released.
    pub fn flush_all(&mut self) -> u64 {
        let released = self.cached_bytes;
        let bins = std::mem::take(&mut self.bins);
        for (_, bin) in bins {
            for slot in bin.slots {
                self.inner.free(slot);
            }
        }
        self.cached_bytes = 0;
        released
    }

    /// Flush the least-recently-used non-empty bin. Returns the bytes
    /// released (0 when the cache is empty).
    fn flush_lru_bin(&mut self) -> u64 {
        let victim = self
            .bins
            .iter()
            .filter(|(_, b)| !b.slots.is_empty())
            .min_by_key(|(class, b)| (b.last_used, **class))
            .map(|(class, _)| *class);
        let Some(class) = victim else { return 0 };
        let Some(bin) = self.bins.remove(&class) else {
            // `victim` was drawn from `self.bins` two lines up.
            unreachable!("LRU victim bin {class} vanished");
        };
        let released = class * bin.slots.len() as u64;
        for slot in bin.slots {
            self.inner.free(slot);
        }
        self.cached_bytes -= released;
        self.trims += 1;
        released
    }

    /// Flush LRU bins until the cache fits under `max_cached_bytes`.
    fn enforce_cap(&mut self) {
        while self.cached_bytes > self.max_cached_bytes {
            if self.flush_lru_bin() == 0 {
                break;
            }
        }
    }
}

impl<A: AddressAllocator> AddressAllocator for PooledAllocator<A> {
    fn allocate(&mut self, size: u64) -> Result<Allocation, AllocError> {
        let class = self.class_of(size);
        self.clock += 1;
        if let Some(bin) = self.bins.get_mut(&class) {
            if let Some(slot) = bin.slots.pop() {
                bin.last_used = self.clock;
                self.cached_bytes -= class;
                self.hits += 1;
                self.stats.on_allocate(size, class);
                return Ok(Allocation {
                    offset: slot.offset,
                    size,
                    reserved: class,
                });
            }
        }
        self.misses += 1;
        // Miss: take a fresh slot from the inner allocator, flushing LRU
        // bins back (they coalesce inside) if it is out of room.
        loop {
            match self.inner.allocate(class) {
                Ok(ia) => {
                    self.stats.on_allocate(size, class);
                    return Ok(Allocation {
                        offset: ia.offset,
                        size,
                        reserved: class,
                    });
                }
                Err(e) => {
                    if self.flush_lru_bin() == 0 {
                        self.stats.on_failure();
                        return Err(e);
                    }
                }
            }
        }
    }

    fn free(&mut self, alloc: Allocation) {
        let class = alloc.reserved;
        debug_assert!(class.is_power_of_two() && class >= alloc.size);
        self.stats.on_free(alloc.size, class);
        if self.max_cached_bytes == 0 {
            // Caching disabled: the A/B baseline path.
            self.inner.free(Allocation {
                offset: alloc.offset,
                size: class,
                reserved: class,
            });
            return;
        }
        self.clock += 1;
        let bin = self.bins.entry(class).or_default();
        bin.last_used = self.clock;
        bin.slots.push(Allocation {
            offset: alloc.offset,
            size: class,
            reserved: class,
        });
        self.cached_bytes += class;
        self.enforce_cap();
    }

    fn capacity(&self) -> u64 {
        self.inner.capacity()
    }

    fn stats(&self) -> FragmentationStats {
        // Allocation/free counters and internal fragmentation (the rounding
        // tax) are tracked here, where the size-class decision is made;
        // external fragmentation is a property of the inner address space.
        let inner = self.inner.stats();
        let mut s = self.stats.clone();
        s.largest_free_extent = inner.largest_free_extent;
        s.external_frag = inner.external_frag;
        s.worst_external_frag = s.worst_external_frag.max(inner.worst_external_frag);
        s
    }

    fn name(&self) -> &'static str {
        "pooled (size-class reuse)"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BestFitAllocator;

    fn pooled(capacity: u64) -> PooledAllocator<BestFitAllocator> {
        PooledAllocator::new(BestFitAllocator::new(capacity))
    }

    #[test]
    fn classes_round_to_power_of_two() {
        let a = pooled(1 << 20);
        assert_eq!(a.class_of(1), 256);
        assert_eq!(a.class_of(256), 256);
        assert_eq!(a.class_of(257), 512);
        assert_eq!(a.class_of(5000), 8192);
    }

    #[test]
    fn freed_slot_is_reused_at_same_offset() {
        let mut a = pooled(1 << 20);
        let x = a.allocate(1000).unwrap();
        assert_eq!(a.misses(), 1);
        a.free(x);
        assert_eq!(a.cached_bytes(), 1024);
        // Same class (1024) → served from the bin, same address.
        let y = a.allocate(900).unwrap();
        assert_eq!(y.offset, x.offset);
        assert_eq!(a.hits(), 1);
        assert_eq!(a.cached_bytes(), 0);
        a.free(y);
    }

    #[test]
    fn lifo_reuse_prefers_warmest_slot() {
        let mut a = pooled(1 << 20);
        let x = a.allocate(512).unwrap();
        let y = a.allocate(512).unwrap();
        a.free(x);
        a.free(y); // y freed last → reused first
        let z = a.allocate(512).unwrap();
        assert_eq!(z.offset, y.offset);
        a.free(z);
    }

    #[test]
    fn cap_zero_disables_caching() {
        let mut a = PooledAllocator::with_config(BestFitAllocator::new(1 << 20), 256, 0);
        let x = a.allocate(1000).unwrap();
        a.free(x);
        assert_eq!(a.cached_bytes(), 0);
        // Next allocation is a miss again: nothing was cached.
        let y = a.allocate(1000).unwrap();
        assert_eq!(a.hits(), 0);
        assert_eq!(a.misses(), 2);
        a.free(y);
    }

    #[test]
    fn cap_bounds_cached_bytes_via_lru_trim() {
        let mut a = PooledAllocator::with_config(BestFitAllocator::new(1 << 20), 256, 2048);
        let slots: Vec<_> = (0..4).map(|_| a.allocate(1024).unwrap()).collect();
        for s in slots {
            a.free(s);
        }
        // 4 KiB freed into one bin but the cap is 2 KiB: the whole bin is
        // LRU-flushed once it exceeds the cap.
        assert!(a.cached_bytes() <= 2048);
        assert!(a.trims() >= 1);
    }

    #[test]
    fn pressure_flushes_cache_back_to_inner() {
        // Fill the pool with small slots, park them all in bins, then ask
        // for one allocation larger than any cached class: the cache must
        // drain back to the inner allocator (which coalesces) to serve it.
        let mut a = pooled(4096);
        let slots: Vec<_> = (0..4).map(|_| a.allocate(1024).unwrap()).collect();
        for s in slots {
            a.free(s);
        }
        assert_eq!(a.cached_bytes(), 4096);
        let big = a.allocate(4096).unwrap();
        assert_eq!(big.reserved, 4096);
        assert_eq!(a.cached_bytes(), 0);
        assert!(a.trims() >= 1);
        a.free(big);
    }

    #[test]
    fn recurring_shapes_hit_steady_state() {
        // The churn pattern the paper describes: the same shapes allocated
        // and freed every iteration. After warm-up every request is a hit.
        let mut a = pooled(1 << 20);
        let shapes = [5000u64, 12_000, 700, 5000];
        for _ in 0..50 {
            let live: Vec<_> = shapes.iter().map(|&s| a.allocate(s).unwrap()).collect();
            for x in live {
                a.free(x);
            }
        }
        let total = a.hits() + a.misses();
        assert_eq!(total, 200);
        // First iteration misses (4), everything after hits.
        assert_eq!(a.misses(), 4);
        assert!(a.hit_rate() > 0.97);
    }

    #[test]
    fn flush_all_returns_everything() {
        let mut a = pooled(1 << 20);
        let x = a.allocate(1000).unwrap();
        let y = a.allocate(300).unwrap();
        a.free(x);
        a.free(y);
        let released = a.flush_all();
        assert_eq!(released, 1024 + 512);
        assert_eq!(a.cached_bytes(), 0);
        // Inner allocator got everything back: a full-capacity allocation
        // succeeds.
        let big = a.allocate(1 << 20).unwrap();
        a.free(big);
    }

    #[test]
    fn failure_counted_once_after_cache_drain() {
        let mut a = pooled(1024);
        let x = a.allocate(1024).unwrap();
        assert!(matches!(
            a.allocate(512),
            Err(AllocError::OutOfMemory { .. })
        ));
        assert_eq!(a.stats().num_failures, 1);
        a.free(x);
    }

    #[test]
    fn stats_account_rounding_as_internal_frag() {
        let mut a = pooled(1 << 20);
        let x = a.allocate(1000).unwrap();
        let s = a.stats();
        assert_eq!(s.used_bytes, 1000);
        assert_eq!(s.reserved_bytes, 1024);
        assert!(s.internal_frag() > 0.02);
        a.free(x);
        assert_eq!(a.stats().used_bytes, 0);
    }
}
