//! Segregated-fit allocation: power-of-two size-binned free lists with
//! rounding — the structure TensorFlow's real BFC allocator uses for fast
//! lookup. Rounding every request up to a bin boundary trades *internal*
//! fragmentation for O(#bins) allocation, another point on the spectrum the
//! Angel-PTM page design competes against (pages get uniformity without the
//! rounding waste on large tensors, because tensors span pages instead of
//! being rounded to one block).

use crate::alloc::{AddressAllocator, AllocError, Allocation};
use crate::pool::{BytePool, Extent};
use crate::stats::FragmentationStats;

/// Segregated-fit over power-of-two bins, backed by the shared [`BytePool`].
#[derive(Debug, Clone)]
pub struct SegregatedFitAllocator {
    pool: BytePool,
    stats: FragmentationStats,
    /// Smallest bin (requests below round up to it).
    min_bin: u64,
}

impl SegregatedFitAllocator {
    pub fn new(capacity: u64) -> Self {
        Self::with_min_bin(capacity, 256)
    }

    pub fn with_min_bin(capacity: u64, min_bin: u64) -> Self {
        assert!(min_bin.is_power_of_two());
        Self {
            pool: BytePool::new(capacity),
            stats: FragmentationStats::new(capacity),
            min_bin,
        }
    }

    /// Round a request up to its bin size.
    pub fn bin_size(&self, size: u64) -> u64 {
        size.max(self.min_bin).next_power_of_two()
    }
}

impl AddressAllocator for SegregatedFitAllocator {
    fn allocate(&mut self, size: u64) -> Result<Allocation, AllocError> {
        let reserved = self.bin_size(size);
        match self.pool.allocate_best_fit(reserved) {
            Some(ext) => {
                self.stats.on_allocate(size, reserved);
                self.stats.observe(&self.pool);
                Ok(Allocation {
                    offset: ext.offset,
                    size,
                    reserved,
                })
            }
            None => {
                self.stats.on_failure();
                let free = self.pool.free_bytes();
                if reserved > free {
                    Err(AllocError::OutOfMemory {
                        requested: reserved,
                        free,
                    })
                } else {
                    Err(AllocError::Fragmented {
                        requested: reserved,
                        free,
                        largest: self.pool.largest_free_extent(),
                    })
                }
            }
        }
    }

    fn free(&mut self, alloc: Allocation) {
        self.pool.free(Extent::new(alloc.offset, alloc.reserved));
        self.stats.on_free(alloc.size, alloc.reserved);
        self.stats.observe(&self.pool);
    }

    fn capacity(&self) -> u64 {
        self.pool.capacity()
    }

    fn stats(&self) -> FragmentationStats {
        self.stats.clone()
    }

    fn name(&self) -> &'static str {
        "segregated-fit (binned BFC)"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_to_power_of_two_bins() {
        let a = SegregatedFitAllocator::new(1 << 20);
        assert_eq!(a.bin_size(1), 256);
        assert_eq!(a.bin_size(256), 256);
        assert_eq!(a.bin_size(257), 512);
        assert_eq!(a.bin_size(1000), 1024);
        assert_eq!(a.bin_size(1 << 16), 1 << 16);
    }

    #[test]
    fn internal_fragmentation_from_rounding() {
        let mut a = SegregatedFitAllocator::new(1 << 20);
        let x = a.allocate(1000).unwrap();
        assert_eq!(x.reserved, 1024);
        let s = a.stats();
        assert_eq!(s.used_bytes, 1000);
        assert_eq!(s.reserved_bytes, 1024);
        assert!(s.internal_frag() > 0.02);
        a.free(x);
        assert_eq!(a.stats().used_bytes, 0);
    }

    #[test]
    fn identical_bins_reuse_perfectly() {
        // The benefit of binning: same-bin churn never fragments.
        let mut a = SegregatedFitAllocator::new(8192);
        for _ in 0..100 {
            let x = a.allocate(900).unwrap(); // bin 1024
            let y = a.allocate(700).unwrap(); // bin 1024
            a.free(x);
            let z = a.allocate(800).unwrap(); // reuses x's bin slot
            assert_eq!(z.offset, 0);
            a.free(y);
            a.free(z);
        }
        // No allocation ever failed: same-bin slots recycle perfectly even
        // though transient holes exist while neighbours are live.
        assert_eq!(a.stats().num_failures, 0);
        assert_eq!(a.stats().used_bytes, 0);
    }

    #[test]
    fn rounding_can_cause_oom_that_exact_fit_avoids() {
        // 3 × 1000-byte tensors fit 3072 bytes exactly, but their 1024-byte
        // bins need 3072 too — while 3 × 1025 needs 6144: the rounding tax.
        let mut a = SegregatedFitAllocator::new(4096);
        let _x = a.allocate(1025).unwrap(); // bin 2048
        let _y = a.allocate(1025).unwrap(); // bin 2048
        assert!(matches!(
            a.allocate(1025),
            Err(AllocError::OutOfMemory { .. })
        ));
        // An exact-fit allocator would have placed all three.
        let mut exact = crate::BestFitAllocator::new(4096);
        let _ = exact.allocate(1025).unwrap();
        let _ = exact.allocate(1025).unwrap();
        assert!(exact.allocate(1025).is_ok());
    }
}
