//! Baseline allocators behind a common [`AddressAllocator`] trait.
//!
//! These model the memory-management policies of the systems Angel-PTM is
//! compared against in Sections 3.2 and 4.1:
//!
//! * [`NaiveAllocator`] — first-fit per-tensor allocation with coalescing on
//!   free, the behaviour of a PyTorch-style caching allocator under the
//!   offload workload ("DeepSpeed uses the original memory management of
//!   PyTorch for offloading and recomputing, which frequently allocates and
//!   releases tensors, leading to space fragments");
//! * [`BestFitAllocator`] — TensorFlow's BFC policy ("TensorFlow utilizes
//!   the best-fit allocation (BFC) algorithm ... it may take longer to find
//!   an available block");
//! * [`ChunkAllocator`] — PatrickStar's policy ("manages GPU memory in chunks
//!   rather than tensors, where the chunk size must be larger than the
//!   largest tensor used in model training. This would also result in memory
//!   fragments within each chunk").
//!
//! Angel-PTM's own page allocator lives in `angel-core::allocator`; the
//! `motivation_fragmentation` harness in `angel-bench` runs all four over the
//! same tensor traces.

use crate::pool::{BytePool, Extent};
use crate::stats::FragmentationStats;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Why an allocation failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AllocError {
    /// Not enough free bytes anywhere in the pool.
    OutOfMemory { requested: u64, free: u64 },
    /// Enough free bytes in total, but no single extent is large enough —
    /// i.e. the failure is *caused by fragmentation*. Distinguishing the two
    /// failure modes is the point of the motivation experiment.
    Fragmented {
        requested: u64,
        free: u64,
        largest: u64,
    },
    /// The request exceeds what this allocator can ever satisfy (e.g. larger
    /// than the chunk size of a [`ChunkAllocator`]).
    Unsatisfiable { requested: u64, limit: u64 },
}

impl fmt::Display for AllocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AllocError::OutOfMemory { requested, free } => {
                write!(f, "out of memory: requested {requested} B, {free} B free")
            }
            AllocError::Fragmented {
                requested,
                free,
                largest,
            } => write!(
                f,
                "fragmented: requested {requested} B, {free} B free but largest extent {largest} B"
            ),
            AllocError::Unsatisfiable { requested, limit } => {
                write!(
                    f,
                    "unsatisfiable: requested {requested} B exceeds limit {limit} B"
                )
            }
        }
    }
}

impl std::error::Error for AllocError {}

/// A live allocation handed back by an [`AddressAllocator`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Allocation {
    pub offset: u64,
    /// Bytes requested by the caller.
    pub size: u64,
    /// Bytes actually reserved (≥ `size`; the difference is internal
    /// fragmentation, e.g. chunk rounding).
    pub reserved: u64,
}

/// Common interface over all allocation policies so the fragmentation
/// experiment can drive them uniformly.
pub trait AddressAllocator {
    /// Reserve `size` bytes, returning where they live.
    fn allocate(&mut self, size: u64) -> Result<Allocation, AllocError>;
    /// Release a previous allocation.
    fn free(&mut self, alloc: Allocation);
    /// Total pool capacity.
    fn capacity(&self) -> u64;
    /// Current fragmentation / usage statistics.
    fn stats(&self) -> FragmentationStats;
    /// Policy name for reports.
    fn name(&self) -> &'static str;
}

fn classify_failure(pool: &BytePool, requested: u64) -> AllocError {
    let free = pool.free_bytes();
    if requested > free {
        AllocError::OutOfMemory { requested, free }
    } else {
        AllocError::Fragmented {
            requested,
            free,
            largest: pool.largest_free_extent(),
        }
    }
}

/// First-fit per-tensor allocation: the PyTorch-like baseline.
#[derive(Debug, Clone)]
pub struct NaiveAllocator {
    pool: BytePool,
    stats: FragmentationStats,
}

impl NaiveAllocator {
    pub fn new(capacity: u64) -> Self {
        Self {
            pool: BytePool::new(capacity),
            stats: FragmentationStats::new(capacity),
        }
    }
}

impl AddressAllocator for NaiveAllocator {
    fn allocate(&mut self, size: u64) -> Result<Allocation, AllocError> {
        match self.pool.allocate_first_fit(size) {
            Some(ext) => {
                self.stats.on_allocate(size, size);
                self.stats.observe(&self.pool);
                Ok(Allocation {
                    offset: ext.offset,
                    size,
                    reserved: size,
                })
            }
            None => {
                self.stats.on_failure();
                Err(classify_failure(&self.pool, size))
            }
        }
    }

    fn free(&mut self, alloc: Allocation) {
        self.pool.free(Extent::new(alloc.offset, alloc.reserved));
        self.stats.on_free(alloc.size, alloc.reserved);
        self.stats.observe(&self.pool);
    }

    fn capacity(&self) -> u64 {
        self.pool.capacity()
    }

    fn stats(&self) -> FragmentationStats {
        self.stats.clone()
    }

    fn name(&self) -> &'static str {
        "naive-first-fit"
    }
}

/// Best-fit with coalescing: TensorFlow's BFC policy.
#[derive(Debug, Clone)]
pub struct BestFitAllocator {
    pool: BytePool,
    stats: FragmentationStats,
}

impl BestFitAllocator {
    pub fn new(capacity: u64) -> Self {
        Self {
            pool: BytePool::new(capacity),
            stats: FragmentationStats::new(capacity),
        }
    }
}

impl AddressAllocator for BestFitAllocator {
    fn allocate(&mut self, size: u64) -> Result<Allocation, AllocError> {
        match self.pool.allocate_best_fit(size) {
            Some(ext) => {
                self.stats.on_allocate(size, size);
                self.stats.observe(&self.pool);
                Ok(Allocation {
                    offset: ext.offset,
                    size,
                    reserved: size,
                })
            }
            None => {
                self.stats.on_failure();
                Err(classify_failure(&self.pool, size))
            }
        }
    }

    fn free(&mut self, alloc: Allocation) {
        self.pool.free(Extent::new(alloc.offset, alloc.reserved));
        self.stats.on_free(alloc.size, alloc.reserved);
        self.stats.observe(&self.pool);
    }

    fn capacity(&self) -> u64 {
        self.pool.capacity()
    }

    fn stats(&self) -> FragmentationStats {
        self.stats.clone()
    }

    fn name(&self) -> &'static str {
        "best-fit (BFC)"
    }
}

/// PatrickStar-style chunk allocation: memory is carved into fixed chunks no
/// smaller than the largest tensor; each tensor lives inside one chunk, and a
/// chunk holds tensors until it cannot fit the next one (bump allocation
/// within the chunk, whole-chunk reclamation when all tenants are freed).
///
/// Internal fragmentation appears at the tail of every chunk, and a single
/// large tensor can strand most of a chunk — the paper's critique.
#[derive(Debug, Clone)]
pub struct ChunkAllocator {
    chunk_size: u64,
    /// Per-chunk bookkeeping: bump cursor and live-tenant count. A chunk is
    /// recycled (cursor reset) only when its tenant count drops to zero —
    /// the whole-chunk-granularity reuse that strands tail space.
    chunks: Vec<ChunkState>,
    capacity: u64,
    stats: FragmentationStats,
}

#[derive(Debug, Clone, Copy, Default)]
struct ChunkState {
    cursor: u64,
    tenants: u32,
}

impl ChunkAllocator {
    /// `capacity` is rounded down to a whole number of chunks; `chunk_size`
    /// must be at least as large as the largest tensor ever requested
    /// (requests above it return [`AllocError::Unsatisfiable`]).
    pub fn new(capacity: u64, chunk_size: u64) -> Self {
        assert!(chunk_size > 0);
        let num_chunks = (capacity / chunk_size) as usize;
        Self {
            chunk_size,
            chunks: vec![ChunkState::default(); num_chunks],
            capacity: num_chunks as u64 * chunk_size,
            stats: FragmentationStats::new(num_chunks as u64 * chunk_size),
        }
    }

    pub fn chunk_size(&self) -> u64 {
        self.chunk_size
    }

    fn chunk_of(&self, offset: u64) -> usize {
        (offset / self.chunk_size) as usize
    }
}

impl AddressAllocator for ChunkAllocator {
    fn allocate(&mut self, size: u64) -> Result<Allocation, AllocError> {
        if size > self.chunk_size {
            self.stats.on_failure();
            return Err(AllocError::Unsatisfiable {
                requested: size,
                limit: self.chunk_size,
            });
        }
        // First chunk whose bump cursor leaves room.
        let found = self
            .chunks
            .iter()
            .position(|c| self.chunk_size - c.cursor >= size && c.tenants > 0)
            .or_else(|| self.chunks.iter().position(|c| c.tenants == 0));
        match found {
            Some(i) => {
                let base = i as u64 * self.chunk_size;
                if self.chunks[i].tenants == 0 {
                    self.chunks[i].cursor = 0;
                }
                let offset = base + self.chunks[i].cursor;
                self.chunks[i].cursor += size;
                self.chunks[i].tenants += 1;
                self.stats.on_allocate(size, size);
                self.stats.observe_raw(
                    self.used_reserved_bytes(),
                    self.largest_available(),
                    self.free_bytes_visible(),
                );
                Ok(Allocation {
                    offset,
                    size,
                    reserved: size,
                })
            }
            None => {
                self.stats.on_failure();
                let free = self.free_bytes_visible();
                if size > free {
                    Err(AllocError::OutOfMemory {
                        requested: size,
                        free,
                    })
                } else {
                    Err(AllocError::Fragmented {
                        requested: size,
                        free,
                        largest: self.largest_available(),
                    })
                }
            }
        }
    }

    fn free(&mut self, alloc: Allocation) {
        let i = self.chunk_of(alloc.offset);
        assert!(self.chunks[i].tenants > 0, "double free in chunk {i}");
        self.chunks[i].tenants -= 1;
        if self.chunks[i].tenants == 0 {
            self.chunks[i].cursor = 0;
        }
        self.stats.on_free(alloc.size, alloc.reserved);
        self.stats.observe_raw(
            self.used_reserved_bytes(),
            self.largest_available(),
            self.free_bytes_visible(),
        );
    }

    fn capacity(&self) -> u64 {
        self.capacity
    }

    fn stats(&self) -> FragmentationStats {
        self.stats.clone()
    }

    fn name(&self) -> &'static str {
        "chunk-based (PatrickStar)"
    }
}

impl ChunkAllocator {
    /// Bytes usable for *new* allocations: tail space of partially-filled
    /// live chunks plus whole empty chunks. Space behind the cursor of a
    /// live chunk is stranded until the whole chunk empties.
    fn free_bytes_visible(&self) -> u64 {
        self.chunks
            .iter()
            .map(|c| {
                if c.tenants == 0 {
                    self.chunk_size
                } else {
                    self.chunk_size - c.cursor
                }
            })
            .sum()
    }

    fn used_reserved_bytes(&self) -> u64 {
        self.capacity - self.free_bytes_visible()
    }

    fn largest_available(&self) -> u64 {
        self.chunks
            .iter()
            .map(|c| {
                if c.tenants == 0 {
                    self.chunk_size
                } else {
                    self.chunk_size - c.cursor
                }
            })
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn naive_fragmentation_failure_mode() {
        let mut a = NaiveAllocator::new(1000);
        let blocks: Vec<_> = (0..10).map(|_| a.allocate(100).unwrap()).collect();
        for (i, b) in blocks.into_iter().enumerate() {
            if i % 2 == 0 {
                a.free(b);
            }
        }
        // 500 B free but checkerboarded into 100 B holes.
        match a.allocate(200) {
            Err(AllocError::Fragmented {
                free: 500,
                largest: 100,
                ..
            }) => {}
            other => panic!("expected fragmentation failure, got {other:?}"),
        }
    }

    #[test]
    fn best_fit_reuses_exact_holes() {
        let mut a = BestFitAllocator::new(1000);
        let x = a.allocate(128).unwrap();
        let _y = a.allocate(300).unwrap();
        a.free(x);
        // A new 128 B tensor lands exactly in the hole.
        let z = a.allocate(128).unwrap();
        assert_eq!(z.offset, 0);
    }

    #[test]
    fn chunk_rejects_oversized_tensors() {
        let mut a = ChunkAllocator::new(10_000, 1000);
        assert!(matches!(
            a.allocate(1001),
            Err(AllocError::Unsatisfiable {
                requested: 1001,
                limit: 1000
            })
        ));
    }

    #[test]
    fn chunk_strands_tail_space() {
        // 2 chunks of 1000. Put a 600 B tensor in each; each chunk now has a
        // 400 B tail, but an 800 B tensor cannot fit anywhere even though
        // 800 B is "free" in total — the paper's critique of chunking.
        let mut a = ChunkAllocator::new(2000, 1000);
        let _t1 = a.allocate(600).unwrap();
        let _t2 = a.allocate(600).unwrap();
        match a.allocate(800) {
            Err(AllocError::Fragmented {
                free: 800,
                largest: 400,
                ..
            }) => {}
            other => panic!("expected stranded-tail failure, got {other:?}"),
        }
    }

    #[test]
    fn chunk_recycles_when_empty() {
        let mut a = ChunkAllocator::new(1000, 1000);
        let t1 = a.allocate(900).unwrap();
        assert!(a.allocate(200).is_err());
        a.free(t1);
        // Whole chunk recycled; cursor reset.
        let t2 = a.allocate(1000).unwrap();
        assert_eq!(t2.offset, 0);
    }

    #[test]
    fn chunk_cursor_not_reset_while_live() {
        let mut a = ChunkAllocator::new(1000, 1000);
        let t1 = a.allocate(400).unwrap();
        let t2 = a.allocate(400).unwrap();
        a.free(t1);
        // 400 B hole at the front is stranded; only the 200 B tail remains.
        assert!(a.allocate(300).is_err());
        a.free(t2);
        assert!(a.allocate(1000).is_ok());
    }

    #[test]
    fn stats_track_peak_usage() {
        let mut a = BestFitAllocator::new(1000);
        let x = a.allocate(800).unwrap();
        a.free(x);
        let s = a.stats();
        assert_eq!(s.peak_used_bytes, 800);
        assert_eq!(s.used_bytes, 0);
        assert_eq!(s.num_allocations, 1);
        assert_eq!(s.num_frees, 1);
    }

    #[test]
    fn allocator_names() {
        assert_eq!(NaiveAllocator::new(1).name(), "naive-first-fit");
        assert_eq!(BestFitAllocator::new(1).name(), "best-fit (BFC)");
        assert_eq!(
            ChunkAllocator::new(1, 1).name(),
            "chunk-based (PatrickStar)"
        );
    }
}
