//! Fragmentation and usage statistics shared by all allocators.

use crate::pool::BytePool;
use serde::{Deserialize, Serialize};

/// Running statistics for one allocator over one trace.
///
/// `used_bytes` counts bytes the caller asked for; `reserved_bytes` counts
/// bytes actually taken from the pool (rounding, chunk tails). The difference
/// is internal fragmentation. External fragmentation is derived from pool
/// observations: `1 - largest_free_extent / free_bytes`.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FragmentationStats {
    pub capacity: u64,
    pub used_bytes: u64,
    pub reserved_bytes: u64,
    pub peak_used_bytes: u64,
    pub peak_reserved_bytes: u64,
    pub num_allocations: u64,
    pub num_frees: u64,
    pub num_failures: u64,
    /// Worst external fragmentation ratio observed over the trace, in
    /// `[0, 1]`: 0 = one contiguous free block, →1 = free space shattered.
    pub worst_external_frag: f64,
    /// Most recent external fragmentation ratio.
    pub external_frag: f64,
    /// Largest free extent at the last observation.
    pub largest_free_extent: u64,
}

impl FragmentationStats {
    pub fn new(capacity: u64) -> Self {
        Self {
            capacity,
            ..Default::default()
        }
    }

    /// Record a successful allocation of `size` bytes occupying `reserved`.
    pub fn on_allocate(&mut self, size: u64, reserved: u64) {
        debug_assert!(reserved >= size);
        self.used_bytes += size;
        self.reserved_bytes += reserved;
        self.peak_used_bytes = self.peak_used_bytes.max(self.used_bytes);
        self.peak_reserved_bytes = self.peak_reserved_bytes.max(self.reserved_bytes);
        self.num_allocations += 1;
    }

    /// Record a free of a previous allocation.
    pub fn on_free(&mut self, size: u64, reserved: u64) {
        self.used_bytes -= size;
        self.reserved_bytes -= reserved;
        self.num_frees += 1;
    }

    /// Record a failed allocation.
    pub fn on_failure(&mut self) {
        self.num_failures += 1;
    }

    /// Sample external fragmentation from a [`BytePool`].
    pub fn observe(&mut self, pool: &BytePool) {
        self.observe_raw(
            pool.used_bytes(),
            pool.largest_free_extent(),
            pool.free_bytes(),
        );
    }

    /// Sample external fragmentation from raw numbers (for allocators that do
    /// not use a `BytePool` internally, like the chunk allocator).
    pub fn observe_raw(&mut self, _used: u64, largest_free: u64, free: u64) {
        self.largest_free_extent = largest_free;
        self.external_frag = if free == 0 {
            0.0
        } else {
            1.0 - largest_free as f64 / free as f64
        };
        if self.external_frag > self.worst_external_frag {
            self.worst_external_frag = self.external_frag;
        }
    }

    /// Internal fragmentation ratio right now: wasted ÷ reserved.
    pub fn internal_frag(&self) -> f64 {
        if self.reserved_bytes == 0 {
            0.0
        } else {
            1.0 - self.used_bytes as f64 / self.reserved_bytes as f64
        }
    }

    /// Fraction of the pool in use (by reservation) at the peak.
    pub fn peak_utilization(&self) -> f64 {
        if self.capacity == 0 {
            0.0
        } else {
            self.peak_reserved_bytes as f64 / self.capacity as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accounting_round_trip() {
        let mut s = FragmentationStats::new(1000);
        s.on_allocate(100, 128);
        s.on_allocate(200, 200);
        assert_eq!(s.used_bytes, 300);
        assert_eq!(s.reserved_bytes, 328);
        assert!((s.internal_frag() - (1.0 - 300.0 / 328.0)).abs() < 1e-12);
        s.on_free(100, 128);
        s.on_free(200, 200);
        assert_eq!(s.used_bytes, 0);
        assert_eq!(s.internal_frag(), 0.0);
        assert_eq!(s.peak_used_bytes, 300);
        assert!((s.peak_utilization() - 0.328).abs() < 1e-12);
    }

    #[test]
    fn external_frag_ratio() {
        let mut s = FragmentationStats::new(1000);
        // 500 free in one block: no external fragmentation.
        s.observe_raw(500, 500, 500);
        assert_eq!(s.external_frag, 0.0);
        // 500 free, largest 100: heavily fragmented.
        s.observe_raw(500, 100, 500);
        assert!((s.external_frag - 0.8).abs() < 1e-12);
        assert!((s.worst_external_frag - 0.8).abs() < 1e-12);
        // Recovers, but worst-case is sticky.
        s.observe_raw(500, 500, 500);
        assert_eq!(s.external_frag, 0.0);
        assert!((s.worst_external_frag - 0.8).abs() < 1e-12);
    }

    #[test]
    fn empty_pool_edge_cases() {
        let mut s = FragmentationStats::new(0);
        s.observe_raw(0, 0, 0);
        assert_eq!(s.external_frag, 0.0);
        assert_eq!(s.peak_utilization(), 0.0);
        assert_eq!(s.internal_frag(), 0.0);
    }
}
