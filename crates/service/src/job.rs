//! Job vocabulary: specifications, identities, rejection reasons and the
//! typed event stream every submission produces.

use angel_model::TransformerConfig;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Service-assigned job identity, unique for the lifetime of one service.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct JobId(pub u64);

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job-{}", self.0)
    }
}

/// One training job submitted to the service: what to train, how urgently,
/// and on how large a slice of the shared cluster.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct JobSpec {
    /// Human-readable label (carried through events and reports).
    pub name: String,
    /// The model to train.
    pub model: TransformerConfig,
    /// Scheduling priority; higher values preempt lower ones. Equal
    /// priorities never preempt each other (FIFO within a priority).
    pub priority: u8,
    /// Requested server slice (the job's steady-state size).
    pub servers: usize,
    /// Smallest slice the job accepts: under pressure the scheduler may
    /// shrink the job down to this (splice-based elasticity) instead of
    /// suspending it outright.
    pub min_servers: usize,
    /// Training iterations until the job completes.
    pub iters: usize,
    /// Per-GPU micro-batch size.
    pub batch_size: u64,
}

impl JobSpec {
    /// A spec with sane defaults: priority 0, one server, batch 1.
    pub fn new(name: impl Into<String>, model: TransformerConfig, iters: usize) -> Self {
        Self {
            name: name.into(),
            model,
            priority: 0,
            servers: 1,
            min_servers: 1,
            iters,
            batch_size: 1,
        }
    }

    pub fn with_priority(mut self, priority: u8) -> Self {
        self.priority = priority;
        self
    }

    /// Request `servers`, accepting a shrink down to `min_servers`.
    pub fn with_servers(mut self, servers: usize, min_servers: usize) -> Self {
        self.servers = servers;
        self.min_servers = min_servers;
        self
    }

    pub fn with_batch_size(mut self, batch_size: u64) -> Self {
        self.batch_size = batch_size;
        self
    }

    /// Structural validation, before any planning happens.
    pub fn validate(&self) -> Result<(), RejectReason> {
        let detail = if self.servers == 0 {
            "servers must be >= 1"
        } else if self.min_servers == 0 || self.min_servers > self.servers {
            "min_servers must be in 1..=servers"
        } else if self.iters == 0 {
            "iters must be >= 1"
        } else if self.batch_size == 0 {
            "batch_size must be >= 1"
        } else {
            return Ok(());
        };
        Err(RejectReason::BadSpec { detail })
    }
}

/// Why the service refused a submission. Every reason is terminal: a
/// rejected job is never retried by the service itself.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum RejectReason {
    /// The spec is structurally invalid (zero servers, empty run, ...).
    BadSpec { detail: &'static str },
    /// Planning failed outright at the job's *requested* slice — the model
    /// cannot be placed even on the largest slice it asked for (typed
    /// planner error carried as text).
    Infeasible { error: String },
    /// The plan-graph verifier's provable per-GPU peak-memory bound exceeds
    /// the slice's GPU budget at the requested size. The plan might run —
    /// but the service only admits jobs whose peak is *certified* to fit,
    /// never optimistically (the PatrickStar lesson).
    PeakBoundExceedsBudget {
        peak_bound_bytes: u64,
        gpu_budget_bytes: u64,
    },
    /// The admission queue is at capacity; shedding load at submission
    /// beats collapsing under it later.
    QueueFull { depth: usize },
}

impl fmt::Display for RejectReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RejectReason::BadSpec { detail } => write!(f, "bad spec: {detail}"),
            RejectReason::Infeasible { error } => write!(f, "planning infeasible: {error}"),
            RejectReason::PeakBoundExceedsBudget {
                peak_bound_bytes,
                gpu_budget_bytes,
            } => write!(
                f,
                "certified peak {peak_bound_bytes} B exceeds the per-GPU budget {gpu_budget_bytes} B"
            ),
            RejectReason::QueueFull { depth } => write!(f, "admission queue full ({depth} waiting)"),
        }
    }
}

/// What happened to a job. One `JobEvent` per transition, in virtual-time
/// order, mirrored onto the Perfetto `service` track through the obs layer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum JobEventKind {
    /// Accepted for consideration; waiting for planning/capacity.
    Queued,
    /// Planned and certified: the job holds `servers` servers, and the
    /// verifier proved its per-GPU peak (`peak_bound_bytes`) fits the
    /// budget (`gpu_budget_bytes`).
    Admitted {
        servers: usize,
        peak_bound_bytes: u64,
        gpu_budget_bytes: u64,
    },
    /// Higher-priority work took part or all of the job's slice at an
    /// iteration boundary. `to_servers == 0` means fully suspended (the
    /// engine session is parked, not destroyed).
    Preempted {
        from_servers: usize,
        to_servers: usize,
    },
    /// The job got servers back — a parked session rejoined the cluster,
    /// or a shrunk job grew back toward its requested size.
    Resumed { servers: usize },
    /// All requested iterations ran. `ttfi_ns` is the time from submission
    /// to the end of the job's first iteration (the service SLO metric).
    Completed { iters: usize, ttfi_ns: u64 },
    /// Terminally refused.
    Rejected { reason: RejectReason },
}

impl JobEventKind {
    /// Stable event name for the obs layer (Perfetto instant names must be
    /// `&'static str`).
    pub fn name(&self) -> &'static str {
        match self {
            JobEventKind::Queued => "job_queued",
            JobEventKind::Admitted { .. } => "job_admitted",
            JobEventKind::Preempted { .. } => "job_preempted",
            JobEventKind::Resumed { .. } => "job_resumed",
            JobEventKind::Completed { .. } => "job_completed",
            JobEventKind::Rejected { .. } => "job_rejected",
        }
    }
}

/// One job transition at a virtual timestamp.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobEvent {
    /// Virtual nanoseconds since the service epoch.
    pub at_ns: u64,
    pub job: JobId,
    pub kind: JobEventKind,
}

impl JobEvent {
    /// Hand-built JSON value (the vendored serde derives are inert markers;
    /// JSON producers in this workspace build `Value` trees directly).
    pub fn to_json(&self) -> serde_json::Value {
        match &self.kind {
            JobEventKind::Queued => serde_json::json!({
                "at_ns": self.at_ns, "job": self.job.0, "kind": self.kind.name(),
            }),
            JobEventKind::Admitted {
                servers,
                peak_bound_bytes,
                gpu_budget_bytes,
            } => serde_json::json!({
                "at_ns": self.at_ns, "job": self.job.0, "kind": self.kind.name(),
                "servers": *servers as u64,
                "peak_bound_bytes": *peak_bound_bytes,
                "gpu_budget_bytes": *gpu_budget_bytes,
            }),
            JobEventKind::Preempted {
                from_servers,
                to_servers,
            } => serde_json::json!({
                "at_ns": self.at_ns, "job": self.job.0, "kind": self.kind.name(),
                "from_servers": *from_servers as u64,
                "to_servers": *to_servers as u64,
            }),
            JobEventKind::Resumed { servers } => serde_json::json!({
                "at_ns": self.at_ns, "job": self.job.0, "kind": self.kind.name(),
                "servers": *servers as u64,
            }),
            JobEventKind::Completed { iters, ttfi_ns } => serde_json::json!({
                "at_ns": self.at_ns, "job": self.job.0, "kind": self.kind.name(),
                "iters": *iters as u64,
                "ttfi_ns": *ttfi_ns,
            }),
            JobEventKind::Rejected { reason } => serde_json::json!({
                "at_ns": self.at_ns, "job": self.job.0, "kind": self.kind.name(),
                "reason": reason.to_string(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> TransformerConfig {
        TransformerConfig::gpt3_1_7b().with_layers(2)
    }

    #[test]
    fn spec_validation() {
        let ok = JobSpec::new("a", model(), 3).with_servers(2, 1);
        assert!(ok.validate().is_ok());
        let bad = JobSpec::new("b", model(), 0);
        assert!(matches!(
            bad.validate(),
            Err(RejectReason::BadSpec { detail }) if detail.contains("iters")
        ));
        let bad = JobSpec::new("c", model(), 1).with_servers(2, 3);
        assert!(bad.validate().is_err());
        let mut bad = JobSpec::new("d", model(), 1);
        bad.batch_size = 0;
        assert!(bad.validate().is_err());
        let mut bad = JobSpec::new("e", model(), 1);
        bad.servers = 0;
        assert!(bad.validate().is_err());
    }

    #[test]
    fn reject_reasons_display() {
        let r = RejectReason::PeakBoundExceedsBudget {
            peak_bound_bytes: 100,
            gpu_budget_bytes: 50,
        };
        assert!(r.to_string().contains("100 B"));
        assert!(RejectReason::QueueFull { depth: 9 }
            .to_string()
            .contains('9'));
        assert!(RejectReason::BadSpec { detail: "x" }
            .to_string()
            .contains('x'));
        assert!(RejectReason::Infeasible { error: "y".into() }
            .to_string()
            .contains('y'));
    }

    #[test]
    fn event_names_are_stable() {
        assert_eq!(JobEventKind::Queued.name(), "job_queued");
        assert_eq!(
            JobEventKind::Rejected {
                reason: RejectReason::QueueFull { depth: 1 }
            }
            .name(),
            "job_rejected"
        );
        assert_eq!(format!("{}", JobId(7)), "job-7");
    }

    #[test]
    fn events_render_to_json() {
        let ev = JobEvent {
            at_ns: 42,
            job: JobId(3),
            kind: JobEventKind::Admitted {
                servers: 2,
                peak_bound_bytes: 1024,
                gpu_budget_bytes: 2048,
            },
        };
        let v = ev.to_json();
        assert_eq!(v.get("kind").and_then(|k| k.as_str()), Some("job_admitted"));
        assert_eq!(v.get("at_ns").and_then(|k| k.as_u64()), Some(42));
        assert_eq!(v.get("job").and_then(|k| k.as_u64()), Some(3));
        assert_eq!(v.get("servers").and_then(|k| k.as_u64()), Some(2));
        // The rendered text parses back with the same fields.
        let s = serde_json::to_string(&v).expect("serializes");
        let back = serde_json::from_str(&s).expect("parses");
        assert_eq!(
            back.get("peak_bound_bytes").and_then(|k| k.as_u64()),
            Some(1024)
        );
        let rej = JobEvent {
            at_ns: 1,
            job: JobId(0),
            kind: JobEventKind::Rejected {
                reason: RejectReason::QueueFull { depth: 4 },
            },
        };
        let r = rej.to_json();
        assert_eq!(r.get("kind").and_then(|k| k.as_str()), Some("job_rejected"));
        assert!(r
            .get("reason")
            .and_then(|k| k.as_str())
            .is_some_and(|s| s.contains("full")));
    }
}
