//! # angel-service — a multi-job training service over the simulated cluster
//!
//! Angel-PTM runs as a long-lived *service* inside Tencent: many teams
//! submit pre-training and fine-tuning jobs against one shared GPU fleet,
//! and the system decides what runs where, at what size, and what must
//! wait. This crate reproduces that layer on top of the repo's engine:
//!
//! * **Verified admission control** ([`admission`]): every submission is
//!   planned through the staged pipeline and certified by the §8
//!   plan-graph verifier — a job is admitted only when the verifier's
//!   *provable* per-GPU peak-memory bound fits its slice's budget, so an
//!   admitted job can never OOM its slice (the answer to PatrickStar's
//!   optimistic-accounting critique).
//! * **A deterministic control plane** ([`scheduler::ControlPlane`]): a
//!   discrete-event scheduler over virtual time. Admitted jobs time-share
//!   the cluster as disjoint server slices; higher priority preempts lower
//!   at iteration boundaries, shrinking victims toward `min_servers` via
//!   [`angel_core::Engine::splice_resize`] plan splices (the same online
//!   replanning machinery that absorbs cluster faults) before suspending
//!   them outright. Parked sessions resume with one splice, not a replan.
//! * **A threaded front-end** ([`Service`]): the design brief's async
//!   control plane realized with the workspace's offline substitution — a
//!   control thread plus MPSC channels (no async runtime is vendored).
//!   Cloneable [`ServiceHandle`]s stream submissions in from any thread;
//!   typed [`JobEvent`]s stream out and mirror onto the Perfetto `service`
//!   track through the obs layer.
//!
//! `service_bench` (crates/bench) drives an open-loop synthetic workload
//! through this crate at increasing arrival rates and writes
//! `BENCH_service.json`.

#![cfg_attr(test, allow(clippy::disallowed_methods))]

pub mod admission;
pub mod cluster;
pub mod job;
pub mod scheduler;
mod service;

pub use admission::{admit_at, certify, slice_config, AdmissionCertificate};
pub use cluster::ClusterLedger;
pub use job::{JobEvent, JobEventKind, JobId, JobSpec, RejectReason};
pub use scheduler::{percentile_ns, AdmissionRecord, ControlPlane, ServiceConfig, ServiceReport};
pub use service::{Service, ServiceHandle};

#[cfg(test)]
mod tests {
    use super::*;
    use angel_model::TransformerConfig;

    fn tiny(name: &str, iters: usize) -> JobSpec {
        JobSpec::new(
            name,
            TransformerConfig::gpt3_1_7b()
                .with_layers(2)
                .with_seq_len(256),
            iters,
        )
    }

    #[test]
    fn threaded_service_end_to_end() {
        let svc = Service::spawn(ServiceConfig::new(2));
        let handle = svc.handle();
        let a = handle.submit(tiny("a", 2).with_servers(2, 1), 0);
        let b = handle.submit(tiny("b", 2).with_priority(4), 10);
        let whale = handle.submit(
            JobSpec::new("whale", TransformerConfig::gpt3_28b().with_layers(3000), 1),
            20,
        );
        let report = svc.shutdown();
        assert_eq!(report.submitted, 3);
        assert_eq!(report.admitted, 2);
        assert_eq!(report.rejected, 1);
        assert_eq!(report.completed, 2);
        // Ids were assigned by the handle, in submission order.
        assert_eq!((a, b, whale), (JobId(0), JobId(1), JobId(2)));
        let rejected: Vec<JobId> = report
            .events
            .iter()
            .filter(|e| matches!(e.kind, JobEventKind::Rejected { .. }))
            .map(|e| e.job)
            .collect();
        assert_eq!(rejected, vec![whale]);
        // Every admission carries a certificate that fits its budget.
        assert!(report.admissions.iter().all(|a| a.certificate.fits()));
    }

    #[test]
    fn events_stream_out_while_running() {
        let svc = Service::spawn(ServiceConfig::new(1));
        svc.submit(tiny("streamed", 1), 0);
        // The control thread admits asynchronously; the Queued and Admitted
        // events stream out before shutdown. Completion happens during the
        // shutdown drain.
        let mut seen = Vec::new();
        for _ in 0..2000 {
            seen.extend(svc.poll_events());
            if seen
                .iter()
                .any(|e| matches!(e.kind, JobEventKind::Admitted { .. }))
            {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert!(seen.iter().any(|e| matches!(e.kind, JobEventKind::Queued)));
        assert!(seen
            .iter()
            .any(|e| matches!(e.kind, JobEventKind::Admitted { .. })));
        let report = svc.shutdown();
        seen.extend(svc_events(&report, seen.len()));
        assert_eq!(report.events.len(), seen.len());
        assert_eq!(report.events, seen);
    }

    // Remaining events after shutdown come from the report's ordered log
    // (the channel's receiver lives inside the consumed service).
    fn svc_events(report: &ServiceReport, already: usize) -> Vec<JobEvent> {
        report.events[already..].to_vec()
    }

    #[test]
    fn handles_clone_across_threads() {
        let svc = Service::spawn(ServiceConfig::new(2));
        let handles: Vec<_> = (0..3)
            .map(|k| {
                let h = svc.handle();
                std::thread::spawn(move || h.submit(tiny(&format!("t{k}"), 1), 0))
            })
            .collect();
        let mut ids: Vec<u64> = handles
            .into_iter()
            .map(|h| h.join().expect("submitter thread").0)
            .collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 1, 2]);
        let report = svc.shutdown();
        assert_eq!(report.submitted, 3);
        assert_eq!(report.completed, 3);
    }
}
