//! The long-running service front-end: a control thread plus channels.
//!
//! The design brief called for an async control plane; the workspace builds
//! offline with no async runtime vendored, so the service uses the same
//! substitution as the rest of the repo (vendor/README.md): a dedicated
//! control thread owning the [`ControlPlane`], an MPSC submission channel
//! in, and an event channel out. Handles are cheap to clone and `Sync`, so
//! any number of submitter threads can stream jobs in concurrently; the
//! control thread serializes them onto the deterministic virtual timeline.

use crate::job::{JobEvent, JobId, JobSpec};
use crate::scheduler::{ControlPlane, ServiceConfig, ServiceReport};
use crossbeam::channel::{unbounded, Receiver, Sender};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

enum Control {
    Submit {
        id: JobId,
        spec: JobSpec,
        at_ns: u64,
    },
    Shutdown,
}

/// A cloneable, thread-safe submission handle.
pub struct ServiceHandle {
    tx: Sender<Control>,
    next_id: Arc<AtomicU64>,
}

impl Clone for ServiceHandle {
    fn clone(&self) -> Self {
        Self {
            tx: self.tx.clone(),
            next_id: Arc::clone(&self.next_id),
        }
    }
}

impl ServiceHandle {
    /// Submit a job with a virtual arrival time. The id is assigned
    /// immediately; the admit/queue/reject decision arrives on the event
    /// stream. Arrival times should be non-decreasing across the whole
    /// submission stream (earlier times clamp to the virtual clock).
    pub fn submit(&self, spec: JobSpec, at_ns: u64) -> JobId {
        let id = JobId(self.next_id.fetch_add(1, Ordering::Relaxed));
        let _ = self.tx.send(Control::Submit { id, spec, at_ns });
        id
    }
}

/// A running multi-job training service. Owns the control thread; dropping
/// without [`Service::shutdown`] detaches it.
pub struct Service {
    handle: ServiceHandle,
    events: Receiver<JobEvent>,
    thread: JoinHandle<ServiceReport>,
}

impl Service {
    /// Start the control thread over a fresh simulated cluster.
    pub fn spawn(config: ServiceConfig) -> Self {
        let (ctl_tx, ctl_rx) = unbounded::<Control>();
        let (ev_tx, ev_rx) = unbounded::<JobEvent>();
        let thread = std::thread::spawn(move || {
            let mut cp = ControlPlane::new(&config);
            cp.set_event_sink(ev_tx);
            while let Ok(msg) = ctl_rx.recv() {
                match msg {
                    Control::Submit { id, spec, at_ns } => cp.submit_with_id(id, spec, at_ns),
                    Control::Shutdown => break,
                }
            }
            cp.into_report()
        });
        Self {
            handle: ServiceHandle {
                tx: ctl_tx,
                next_id: Arc::new(AtomicU64::new(0)),
            },
            events: ev_rx,
            thread,
        }
    }

    /// A clone of the submission handle (hand these to producer threads).
    pub fn handle(&self) -> ServiceHandle {
        self.handle.clone()
    }

    /// Submit from the owning thread.
    pub fn submit(&self, spec: JobSpec, at_ns: u64) -> JobId {
        self.handle.submit(spec, at_ns)
    }

    /// Drain every job event currently buffered, without blocking.
    pub fn poll_events(&self) -> Vec<JobEvent> {
        let mut out = Vec::new();
        while let Ok(ev) = self.events.try_recv() {
            out.push(ev);
        }
        out
    }

    /// Stop accepting submissions, drain every in-flight job to completion
    /// (resuming anything parked), and return the final report.
    pub fn shutdown(self) -> ServiceReport {
        let _ = self.handle.tx.send(Control::Shutdown);
        match self.thread.join() {
            Ok(report) => report,
            Err(panic) => std::panic::resume_unwind(panic),
        }
    }
}
