//! Server-slice accounting for the shared cluster.
//!
//! The service carves the cluster into disjoint per-job slices of whole
//! servers (each job's engine then simulates its slice as a private
//! cluster). The ledger tracks who holds what, and integrates
//! allocated-server time so the bench can report cluster utilization over
//! the virtual timeline.

use crate::job::JobId;
use std::collections::BTreeMap;

/// Disjoint server-slice ledger with an allocated-time integral.
#[derive(Debug)]
pub struct ClusterLedger {
    total: usize,
    free: usize,
    slices: BTreeMap<JobId, usize>,
    /// ∫ allocated_servers · dt over virtual time, in server-nanoseconds.
    busy_server_ns: u128,
    last_ns: u64,
}

impl ClusterLedger {
    pub fn new(total: usize) -> Self {
        assert!(total >= 1, "a cluster has at least one server");
        Self {
            total,
            free: total,
            slices: BTreeMap::new(),
            busy_server_ns: 0,
            last_ns: 0,
        }
    }

    pub fn total_servers(&self) -> usize {
        self.total
    }

    pub fn free_servers(&self) -> usize {
        self.free
    }

    pub fn slice_of(&self, job: JobId) -> Option<usize> {
        self.slices.get(&job).copied()
    }

    /// Advance the utilization integral to `now_ns` (monotone; earlier
    /// timestamps are ignored).
    pub fn advance(&mut self, now_ns: u64) {
        if now_ns > self.last_ns {
            let dt = now_ns - self.last_ns;
            let allocated = (self.total - self.free) as u128;
            self.busy_server_ns += allocated * dt as u128;
            self.last_ns = now_ns;
        }
    }

    /// Fraction of server-time allocated to jobs over `[0, horizon_ns]`.
    /// Call [`ClusterLedger::advance`] to the horizon first.
    pub fn utilization(&self, horizon_ns: u64) -> f64 {
        if horizon_ns == 0 {
            return 0.0;
        }
        let denom = self.total as u128 * horizon_ns as u128;
        (self.busy_server_ns as f64 / denom as f64).min(1.0)
    }

    /// Carve `servers` servers for `job`. Caller must have checked
    /// capacity; carving beyond it (or double-carving a job) is a
    /// scheduler bug and panics in debug builds, saturating in release.
    pub fn carve(&mut self, job: JobId, servers: usize) {
        debug_assert!(servers <= self.free, "carve beyond free capacity");
        debug_assert!(!self.slices.contains_key(&job), "job already holds a slice");
        let granted = servers.min(self.free);
        self.free -= granted;
        self.slices.insert(job, granted);
    }

    /// Return `job`'s whole slice to the free pool.
    pub fn release(&mut self, job: JobId) -> usize {
        let held = self.slices.remove(&job).unwrap_or(0);
        self.free += held;
        held
    }

    /// Resize `job`'s slice in place (grow bounded by free capacity,
    /// shrink returns servers to the pool). Returns the new size.
    pub fn resize(&mut self, job: JobId, servers: usize) -> usize {
        let held = self.release(job);
        let granted = servers.min(self.free);
        debug_assert!(granted == servers, "grow beyond free capacity");
        self.free -= granted;
        self.slices.insert(job, granted);
        let _ = held;
        granted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn carve_release_resize() {
        let mut l = ClusterLedger::new(8);
        assert_eq!(l.free_servers(), 8);
        l.carve(JobId(1), 3);
        l.carve(JobId(2), 2);
        assert_eq!(l.free_servers(), 3);
        assert_eq!(l.slice_of(JobId(1)), Some(3));
        assert_eq!(l.resize(JobId(1), 1), 1); // shrink
        assert_eq!(l.free_servers(), 5);
        assert_eq!(l.resize(JobId(1), 4), 4); // grow
        assert_eq!(l.free_servers(), 2);
        assert_eq!(l.release(JobId(2)), 2);
        assert_eq!(l.release(JobId(2)), 0); // idempotent
        assert_eq!(l.free_servers(), 4);
    }

    #[test]
    fn utilization_integral() {
        let mut l = ClusterLedger::new(4);
        l.advance(100); // idle prefix
        l.carve(JobId(1), 2);
        l.advance(200); // 2 servers for 100 ns = 200 server-ns
        l.release(JobId(1));
        l.advance(400); // idle again
                        // 200 server-ns over 4 * 400 = 1600 server-ns available.
        let u = l.utilization(400);
        assert!((u - 0.125).abs() < 1e-12, "got {u}");
        assert_eq!(ClusterLedger::new(2).utilization(0), 0.0);
    }
}
