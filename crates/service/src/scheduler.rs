//! The control plane: a deterministic discrete-event scheduler over the
//! shared cluster's virtual timeline.
//!
//! Jobs are planned at submission (through the engine's staged pipeline and
//! the incremental planner behind it), admitted only under a verifier
//! certificate ([`crate::admission`]), and then time-share the cluster as
//! disjoint server slices. All scheduling actions — admission, preemption,
//! shrink/grow, resume — happen at **iteration boundaries**, implemented as
//! [`Engine::splice_resize`] plan splices: the same online-replanning
//! machinery that absorbs cluster faults also implements multi-job
//! elasticity.
//!
//! Policy (deterministic; ties broken by submission order):
//! * higher priority preempts lower, never equal — FIFO within a priority;
//! * a preemption first *shrinks* the victim toward `min_servers` (it keeps
//!   training, smaller), and suspends it entirely only when shrinking
//!   cannot free enough — a suspended job's engine is parked, not
//!   destroyed, so resuming costs one splice, not a fresh plan;
//! * freed capacity is handed out in strict priority order across parked
//!   and queued jobs together (no backfill: a blocked head-of-line
//!   candidate accumulates capacity rather than letting a lower-priority
//!   job churn in and out of the slot that was freed for it), then goes to
//!   growing shrunk running jobs back toward their requested size;
//! * every admission is justified by the §8 verifier's peak-memory bound —
//!   a job whose certified peak cannot fit is rejected, never queued.

use crate::admission::{admit_at, AdmissionCertificate};
use crate::cluster::ClusterLedger;
use crate::job::{JobEvent, JobEventKind, JobId, JobSpec, RejectReason};
use angel_core::{Engine, ObsThread, Recorder};
use crossbeam::channel::Sender;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Static configuration of one service instance.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Servers in the shared cluster.
    pub servers: usize,
    /// Admission-queue capacity; submissions beyond it are shed with
    /// [`RejectReason::QueueFull`].
    pub max_queue: usize,
    /// Observability sink; disabled (free) by default. Job events land on
    /// the Perfetto `service` track, plus `service.*` counters.
    pub recorder: Recorder,
}

impl ServiceConfig {
    pub fn new(servers: usize) -> Self {
        Self {
            servers,
            max_queue: 64,
            recorder: Recorder::disabled(),
        }
    }

    pub fn with_max_queue(mut self, max_queue: usize) -> Self {
        self.max_queue = max_queue;
        self
    }

    pub fn with_recorder(mut self, recorder: Recorder) -> Self {
        self.recorder = recorder;
        self
    }
}

/// One admission decision and its certificate, for the report.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AdmissionRecord {
    pub job: JobId,
    pub name: String,
    pub certificate: AdmissionCertificate,
}

/// End-of-run accounting across every job the service saw.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServiceReport {
    pub submitted: usize,
    pub admitted: usize,
    pub rejected: usize,
    pub completed: usize,
    /// Shrink + suspend preemptions.
    pub preemptions: usize,
    /// Parked-job resumes + shrunk-job grow-backs.
    pub resumes: usize,
    /// Peak number of concurrently *running* jobs.
    pub max_concurrent: usize,
    /// Virtual time at quiescence.
    pub makespan_ns: u64,
    /// Allocated-server time ÷ total server time over the makespan.
    pub utilization: f64,
    /// Per completed job: submission → end of first iteration.
    pub ttfi_ns: Vec<u64>,
    /// Every admission with its verifier certificate.
    pub admissions: Vec<AdmissionRecord>,
    /// The full ordered event log.
    pub events: Vec<JobEvent>,
}

impl ServiceReport {
    /// The `p`-th percentile (0.0..=1.0) of time-to-first-iteration.
    pub fn ttfi_percentile_ns(&self, p: f64) -> u64 {
        percentile_ns(&self.ttfi_ns, p)
    }
}

/// Nearest-rank percentile over unsorted nanosecond samples.
pub fn percentile_ns(samples: &[u64], p: f64) -> u64 {
    if samples.is_empty() {
        return 0;
    }
    let mut sorted: Vec<u64> = samples.to_vec();
    sorted.sort_unstable();
    let rank = (p.clamp(0.0, 1.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

/// A job currently holding a slice and stepping iterations.
struct Running {
    id: JobId,
    spec: JobSpec,
    engine: Box<Engine>,
    servers: usize,
    iters_done: usize,
    submitted_ns: u64,
    ttfi_ns: Option<u64>,
    /// Virtual time at which the in-flight iteration completes.
    next_boundary_ns: u64,
}

/// A job suspended by preemption: the engine session is parked whole, so
/// resuming costs one splice instead of a fresh plan.
struct Parked {
    id: JobId,
    spec: JobSpec,
    engine: Box<Engine>,
    iters_done: usize,
    submitted_ns: u64,
    ttfi_ns: Option<u64>,
}

/// A job admitted to the queue (feasible at its requested size) waiting
/// for capacity.
struct Waiting {
    id: JobId,
    spec: JobSpec,
    submitted_ns: u64,
}

/// The deterministic multi-job scheduler. Drive it directly for synchronous
/// use (benches, tests), or through [`crate::Service`] for the threaded
/// submission stream.
pub struct ControlPlane {
    max_queue: usize,
    recorder: Recorder,
    ledger: ClusterLedger,
    now_ns: u64,
    next_id: u64,
    running: Vec<Running>,
    parked: Vec<Parked>,
    waiting: VecDeque<Waiting>,
    events: Vec<JobEvent>,
    sink: Option<Sender<JobEvent>>,
    submitted: usize,
    admitted: usize,
    rejected: usize,
    completed: usize,
    preemptions: usize,
    resumes: usize,
    max_concurrent: usize,
    ttfi_ns: Vec<u64>,
    admissions: Vec<AdmissionRecord>,
}

impl ControlPlane {
    pub fn new(config: &ServiceConfig) -> Self {
        Self {
            max_queue: config.max_queue,
            recorder: config.recorder.clone(),
            ledger: ClusterLedger::new(config.servers),
            now_ns: 0,
            next_id: 0,
            running: Vec::new(),
            parked: Vec::new(),
            waiting: VecDeque::new(),
            events: Vec::new(),
            sink: None,
            submitted: 0,
            admitted: 0,
            rejected: 0,
            completed: 0,
            preemptions: 0,
            resumes: 0,
            max_concurrent: 0,
            ttfi_ns: Vec::new(),
            admissions: Vec::new(),
        }
    }

    /// Stream every emitted [`JobEvent`] into `tx` as well as the log.
    pub(crate) fn set_event_sink(&mut self, tx: Sender<JobEvent>) {
        self.sink = Some(tx);
    }

    /// Current virtual time.
    pub fn now_ns(&self) -> u64 {
        self.now_ns
    }

    /// The ordered event log so far.
    pub fn events(&self) -> &[JobEvent] {
        &self.events
    }

    /// Jobs currently holding slices and stepping.
    pub fn running_jobs(&self) -> usize {
        self.running.len()
    }

    /// Submit a job with a virtual arrival time (monotone; earlier times
    /// clamp to the current virtual clock). Returns the assigned id —
    /// the decision (admit/queue/reject) lands in the event stream.
    pub fn submit(&mut self, spec: JobSpec, at_ns: u64) -> JobId {
        let id = JobId(self.next_id);
        self.next_id += 1;
        self.submit_with_id(id, spec, at_ns);
        id
    }

    /// Submission with a caller-assigned id (the threaded service hands
    /// ids out before the control thread sees the message).
    pub(crate) fn submit_with_id(&mut self, id: JobId, spec: JobSpec, at_ns: u64) {
        self.advance_to(at_ns);
        self.next_id = self.next_id.max(id.0 + 1);
        self.submitted += 1;
        if let Err(reason) = spec.validate() {
            self.emit(id, JobEventKind::Rejected { reason });
            self.rejected += 1;
            return;
        }
        if spec.min_servers > self.ledger.total_servers() {
            self.emit(
                id,
                JobEventKind::Rejected {
                    reason: RejectReason::BadSpec {
                        detail: "min_servers exceeds the cluster",
                    },
                },
            );
            self.rejected += 1;
            return;
        }
        self.emit(id, JobEventKind::Queued);
        self.try_place_new(id, spec, at_ns.max(self.now_ns));
    }

    /// Process every boundary up to `t`, then move the clock there.
    pub fn advance_to(&mut self, t: u64) {
        while let Some(b) = self.earliest_boundary() {
            if b > t {
                break;
            }
            self.process_next_boundary();
        }
        if t > self.now_ns {
            self.now_ns = t;
            self.ledger.advance(t);
        }
    }

    /// Run the cluster until no job is running and none can be scheduled.
    pub fn run_to_quiescence(&mut self) {
        loop {
            if self.running.is_empty() {
                self.try_schedule();
                if self.running.is_empty() {
                    break;
                }
            }
            self.process_next_boundary();
        }
    }

    /// Drain to quiescence and produce the final report.
    pub fn into_report(mut self) -> ServiceReport {
        self.run_to_quiescence();
        self.ledger.advance(self.now_ns);
        ServiceReport {
            submitted: self.submitted,
            admitted: self.admitted,
            rejected: self.rejected,
            completed: self.completed,
            preemptions: self.preemptions,
            resumes: self.resumes,
            max_concurrent: self.max_concurrent,
            makespan_ns: self.now_ns,
            utilization: self.ledger.utilization(self.now_ns),
            ttfi_ns: self.ttfi_ns,
            admissions: self.admissions,
            events: self.events,
        }
    }

    // ---- internals ------------------------------------------------------

    /// The requested size, clamped to what the cluster can ever grant.
    fn requested(&self, spec: &JobSpec) -> usize {
        spec.servers.min(self.ledger.total_servers())
    }

    fn earliest_boundary(&self) -> Option<u64> {
        self.running.iter().map(|r| r.next_boundary_ns).min()
    }

    fn emit(&mut self, job: JobId, kind: JobEventKind) {
        let ev = JobEvent {
            at_ns: self.now_ns,
            job,
            kind,
        };
        if let Some(tx) = &self.sink {
            let _ = tx.send(ev.clone());
        }
        if self.recorder.is_enabled() {
            let rec = &self.recorder;
            rec.counter(&format!("service.{}", ev.kind.name())).inc();
            rec.instant(
                ObsThread::Service,
                ev.kind.name(),
                i64::try_from(ev.job.0).unwrap_or(-1),
            );
            rec.counter_sample(
                ObsThread::Service,
                "service.running_jobs",
                self.running.len() as u64,
            );
            rec.counter_sample(
                ObsThread::Service,
                "service.queued_jobs",
                (self.waiting.len() + self.parked.len()) as u64,
            );
            rec.counter_sample(
                ObsThread::Service,
                "service.free_servers",
                self.ledger.free_servers() as u64,
            );
        }
        self.events.push(ev);
    }

    fn reject(&mut self, id: JobId, reason: RejectReason) {
        self.rejected += 1;
        self.emit(id, JobEventKind::Rejected { reason });
    }

    /// Admission flow for a fresh submission.
    fn try_place_new(&mut self, id: JobId, spec: JobSpec, submitted_ns: u64) {
        let free = self.ledger.free_servers();
        let requested = self.requested(&spec);
        if free >= spec.min_servers {
            let n = free.min(requested);
            match admit_at(&spec, n) {
                Ok((engine, certificate)) => {
                    self.start(id, spec, engine, certificate, submitted_ns);
                    return;
                }
                Err(reason) if n == requested => {
                    self.reject(id, reason);
                    return;
                }
                Err(_) => {} // infeasible at the *shrunk* size; probe below
            }
        }
        // No capacity right now (or only a slice too small for the model).
        // Probe feasibility at the requested size so permanently-impossible
        // jobs are shed immediately instead of clogging the queue.
        match admit_at(&spec, requested) {
            Ok(_) => self.enqueue(id, spec, submitted_ns),
            Err(reason) => self.reject(id, reason),
        }
    }

    fn enqueue(&mut self, id: JobId, spec: JobSpec, submitted_ns: u64) {
        if self.waiting.len() >= self.max_queue {
            self.reject(
                id,
                RejectReason::QueueFull {
                    depth: self.waiting.len(),
                },
            );
            return;
        }
        self.waiting.push_back(Waiting {
            id,
            spec,
            submitted_ns,
        });
    }

    /// Begin running an admitted job: carve its slice, record the
    /// certificate, and simulate its first iteration from `now`.
    fn start(
        &mut self,
        id: JobId,
        spec: JobSpec,
        engine: Engine,
        certificate: AdmissionCertificate,
        submitted_ns: u64,
    ) {
        self.ledger.carve(id, certificate.servers);
        self.admitted += 1;
        self.admissions.push(AdmissionRecord {
            job: id,
            name: spec.name.clone(),
            certificate,
        });
        self.emit(
            id,
            JobEventKind::Admitted {
                servers: certificate.servers,
                peak_bound_bytes: certificate.peak_bound_bytes,
                gpu_budget_bytes: certificate.gpu_budget_bytes,
            },
        );
        let mut r = Running {
            id,
            spec,
            engine: Box::new(engine),
            servers: certificate.servers,
            iters_done: 0,
            submitted_ns,
            ttfi_ns: None,
            next_boundary_ns: 0,
        };
        self.step(&mut r);
        self.running.push(r);
        self.max_concurrent = self.max_concurrent.max(self.running.len());
    }

    /// Simulate the next iteration of `r`, starting at the current virtual
    /// time, and schedule its boundary.
    fn step(&mut self, r: &mut Running) {
        let stats = r.engine.train_iteration();
        r.next_boundary_ns = self.now_ns + stats.iter_time_ns.max(1);
    }

    /// Advance the earliest iteration boundary: complete the iteration,
    /// apply boundary-scheduled actions (completion, preemption, growth),
    /// and start the job's next iteration if it keeps its slice.
    fn process_next_boundary(&mut self) {
        let Some(idx) = self
            .running
            .iter()
            .enumerate()
            .min_by_key(|(_, r)| (r.next_boundary_ns, r.id))
            .map(|(i, _)| i)
        else {
            return;
        };
        let mut r = self.running.remove(idx);
        self.now_ns = self.now_ns.max(r.next_boundary_ns);
        self.ledger.advance(self.now_ns);
        r.iters_done += 1;
        if r.ttfi_ns.is_none() {
            r.ttfi_ns = Some(self.now_ns.saturating_sub(r.submitted_ns));
        }

        if r.iters_done >= r.spec.iters {
            self.ledger.release(r.id);
            self.completed += 1;
            let ttfi = r.ttfi_ns.unwrap_or(0);
            self.ttfi_ns.push(ttfi);
            self.emit(
                r.id,
                JobEventKind::Completed {
                    iters: r.iters_done,
                    ttfi_ns: ttfi,
                },
            );
            self.try_schedule();
            return;
        }

        let suspended = self.maybe_preempt(&mut r);
        if suspended {
            self.parked.push(Parked {
                id: r.id,
                spec: r.spec,
                engine: r.engine,
                iters_done: r.iters_done,
                submitted_ns: r.submitted_ns,
                ttfi_ns: r.ttfi_ns,
            });
        } else {
            self.maybe_grow(&mut r);
            self.step(&mut r);
            self.running.push(r);
        }
        self.try_schedule();
    }

    /// The highest-priority job waiting for capacity (queued or parked),
    /// with its minimum slice. Ties resolve to the earliest submission.
    fn top_demand(&self) -> Option<(u8, usize)> {
        let waiting = self
            .waiting
            .iter()
            .map(|w| (w.spec.priority, w.id, w.spec.min_servers));
        let parked = self
            .parked
            .iter()
            .map(|p| (p.spec.priority, p.id, p.spec.min_servers));
        waiting
            .chain(parked)
            .max_by_key(|&(prio, id, _)| (prio, std::cmp::Reverse(id)))
            .map(|(prio, _, min)| (prio, min))
    }

    /// At `r`'s boundary: if strictly-higher-priority work is starved of
    /// its minimum slice, shrink `r` toward `min_servers` — or suspend it
    /// outright when shrinking cannot cover the deficit. Returns whether
    /// `r` was suspended.
    fn maybe_preempt(&mut self, r: &mut Running) -> bool {
        let Some((priority, need_min)) = self.top_demand() else {
            return false;
        };
        let free = self.ledger.free_servers();
        if priority <= r.spec.priority || free >= need_min {
            return false;
        }
        let deficit = need_min - free;
        let shrinkable = r.servers.saturating_sub(r.spec.min_servers);
        if shrinkable >= deficit {
            let to = r.servers - deficit;
            // Shrink via plan splice; if the model cannot actually run at
            // the smaller size, fall through to a full suspension.
            if r.engine.splice_resize(r.iters_done, to).is_ok() {
                self.ledger.resize(r.id, to);
                self.preemptions += 1;
                self.emit(
                    r.id,
                    JobEventKind::Preempted {
                        from_servers: r.servers,
                        to_servers: to,
                    },
                );
                r.servers = to;
                return false;
            }
        }
        self.ledger.release(r.id);
        self.preemptions += 1;
        self.emit(
            r.id,
            JobEventKind::Preempted {
                from_servers: r.servers,
                to_servers: 0,
            },
        );
        true
    }

    /// At `r`'s boundary: grow a shrunk job back toward its requested size
    /// when capacity is free and nobody is waiting for it.
    fn maybe_grow(&mut self, r: &mut Running) {
        let requested = self.requested(&r.spec);
        let free = self.ledger.free_servers();
        if r.servers >= requested
            || free == 0
            || !self.waiting.is_empty()
            || !self.parked.is_empty()
        {
            return;
        }
        let to = requested.min(r.servers + free);
        if r.engine.splice_resize(r.iters_done, to).is_err() {
            return;
        }
        self.ledger.resize(r.id, to);
        self.resumes += 1;
        self.emit(r.id, JobEventKind::Resumed { servers: to });
        r.servers = to;
    }

    /// Hand freed capacity out in **strict priority order** across parked
    /// and queued jobs together (FIFO within a priority; parked and queued
    /// compete on equal terms since ids are submission-ordered). Strictness
    /// matters: resuming a parked low-priority victim while a
    /// higher-priority job still waits for its minimum slice would churn —
    /// the victim gets preempted right back at its next boundary. So a
    /// blocked head-of-line candidate stops the handout entirely; freed
    /// capacity accumulates until the demand it was freed for can run.
    fn try_schedule(&mut self) {
        loop {
            let free = self.ledger.free_servers();
            // The single best candidate across both pools.
            let best_parked = self
                .parked
                .iter()
                .enumerate()
                .max_by_key(|(_, p)| (p.spec.priority, std::cmp::Reverse(p.id)))
                .map(|(i, p)| (p.spec.priority, std::cmp::Reverse(p.id), i));
            let best_waiting = self
                .waiting
                .iter()
                .enumerate()
                .max_by_key(|(_, w)| (w.spec.priority, std::cmp::Reverse(w.id)))
                .map(|(i, w)| (w.spec.priority, std::cmp::Reverse(w.id), i));
            match (best_parked, best_waiting) {
                (None, None) => break,
                (Some((_, _, i)), None) => {
                    if !self.resume_parked_at(i, free) {
                        break;
                    }
                }
                (None, Some((_, _, i))) => {
                    if !self.admit_waiting_at(i, free) {
                        break;
                    }
                }
                (Some(p), Some(w)) => {
                    // Strict order; on a priority tie the lower id (earlier
                    // submission) goes first.
                    let placed = if (p.0, p.1) >= (w.0, w.1) {
                        self.resume_parked_at(p.2, free)
                    } else {
                        self.admit_waiting_at(w.2, free)
                    };
                    if !placed {
                        break;
                    }
                }
            }
        }
    }

    /// Try to resume `parked[idx]` with `free` servers available. Returns
    /// whether anything was placed (false ⇒ the handout must stop).
    fn resume_parked_at(&mut self, idx: usize, free: usize) -> bool {
        if self.parked[idx].spec.min_servers > free {
            return false; // head-of-line blocked: accumulate capacity
        }
        let p = self.parked.remove(idx);
        let n = free.min(self.requested(&p.spec));
        let mut engine = p.engine;
        if engine.config().cluster.num_servers != n
            && engine.splice_resize(p.iters_done, n).is_err()
        {
            // Cannot actually run at this size; park it again and stop
            // trying this round (capacity has not changed).
            self.parked.push(Parked { engine, ..p });
            return false;
        }
        self.ledger.carve(p.id, n);
        self.resumes += 1;
        self.emit(p.id, JobEventKind::Resumed { servers: n });
        let mut r = Running {
            id: p.id,
            spec: p.spec,
            engine,
            servers: n,
            iters_done: p.iters_done,
            submitted_ns: p.submitted_ns,
            ttfi_ns: p.ttfi_ns,
            next_boundary_ns: 0,
        };
        self.step(&mut r);
        self.running.push(r);
        self.max_concurrent = self.max_concurrent.max(self.running.len());
        true
    }

    /// Try to admit `waiting[idx]` with `free` servers available. Returns
    /// whether the handout may continue.
    fn admit_waiting_at(&mut self, idx: usize, free: usize) -> bool {
        if self.waiting[idx].spec.min_servers > free {
            return false; // head-of-line blocked: accumulate capacity
        }
        let Some(w) = self.waiting.remove(idx) else {
            return false;
        };
        let requested = self.requested(&w.spec);
        let n = free.min(requested);
        match admit_at(&w.spec, n) {
            Ok((engine, certificate)) => {
                self.start(w.id, w.spec, engine, certificate, w.submitted_ns);
                true
            }
            // Infeasible even at the requested size: terminally reject and
            // keep handing capacity to the next candidate.
            Err(reason) if n == requested => {
                self.reject(w.id, reason);
                true
            }
            Err(_) => {
                // Feasible only at a larger slice; keep waiting. Put it
                // back and stop — capacity has not changed, so retrying
                // at the same size would loop.
                self.waiting.push_back(w);
                false
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use angel_model::TransformerConfig;

    fn tiny(name: &str, iters: usize) -> JobSpec {
        JobSpec::new(
            name,
            TransformerConfig::gpt3_1_7b()
                .with_layers(2)
                .with_seq_len(256),
            iters,
        )
    }

    #[test]
    fn percentiles() {
        assert_eq!(percentile_ns(&[], 0.5), 0);
        assert_eq!(percentile_ns(&[7], 0.99), 7);
        let xs: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile_ns(&xs, 0.0), 1);
        assert_eq!(percentile_ns(&xs, 0.5), 51);
        assert_eq!(percentile_ns(&xs, 1.0), 100);
    }

    #[test]
    fn single_job_runs_to_completion() {
        let mut cp = ControlPlane::new(&ServiceConfig::new(2));
        let id = cp.submit(tiny("solo", 3), 0);
        let report = cp.into_report();
        assert_eq!(report.submitted, 1);
        assert_eq!(report.admitted, 1);
        assert_eq!(report.completed, 1);
        assert_eq!(report.rejected, 0);
        assert_eq!(report.ttfi_ns.len(), 1);
        assert!(report.ttfi_ns[0] > 0);
        assert!(report.makespan_ns > 0);
        assert!(report.utilization > 0.0 && report.utilization <= 1.0);
        // Admission carried a fitting certificate.
        assert_eq!(report.admissions.len(), 1);
        assert!(report.admissions[0].certificate.fits());
        // Event order for the one job: Queued → Admitted → Completed.
        let kinds: Vec<&'static str> = report
            .events
            .iter()
            .filter(|e| e.job == id)
            .map(|e| e.kind.name())
            .collect();
        assert_eq!(kinds, ["job_queued", "job_admitted", "job_completed"]);
    }

    #[test]
    fn concurrent_jobs_share_the_cluster() {
        let mut cp = ControlPlane::new(&ServiceConfig::new(4));
        for k in 0..3 {
            cp.submit(tiny(&format!("j{k}"), 2), 0);
        }
        let report = cp.into_report();
        assert_eq!(report.completed, 3);
        assert_eq!(report.max_concurrent, 3);
        assert_eq!(report.preemptions, 0);
    }

    #[test]
    fn capacity_queues_then_admits() {
        let mut cp = ControlPlane::new(&ServiceConfig::new(1));
        cp.submit(tiny("first", 2), 0);
        cp.submit(tiny("second", 2), 0); // cluster full → waits
        let report = cp.into_report();
        assert_eq!(report.admitted, 2);
        assert_eq!(report.completed, 2);
        assert_eq!(report.max_concurrent, 1);
        // The second job's TTFI includes its queueing delay.
        assert!(report.ttfi_ns[1] > report.ttfi_ns[0]);
    }

    #[test]
    fn higher_priority_preempts_and_victim_resumes() {
        let mut cp = ControlPlane::new(&ServiceConfig::new(2));
        // The victim wants the whole cluster but tolerates half. It runs
        // long enough to still hold boundaries after the urgent job leaves
        // (growth back happens at the victim's own iteration boundaries).
        cp.submit(tiny("victim", 6).with_servers(2, 1), 0);
        // An urgent job arrives mid-run and needs one server.
        cp.submit(tiny("urgent", 2).with_priority(3), 1);
        let report = cp.into_report();
        assert_eq!(report.completed, 2);
        assert!(report.preemptions >= 1, "urgent work must preempt");
        assert!(report.resumes >= 1, "victim must grow back after");
        let kinds: Vec<&'static str> = report.events.iter().map(|e| e.kind.name()).collect();
        assert!(kinds.contains(&"job_preempted"));
        assert!(kinds.contains(&"job_resumed"));
        // The victim was shrunk, not killed: it still completed all iters.
        let completed: Vec<JobId> = report
            .events
            .iter()
            .filter(|e| matches!(e.kind, JobEventKind::Completed { .. }))
            .map(|e| e.job)
            .collect();
        assert!(completed.contains(&JobId(0)) && completed.contains(&JobId(1)));
    }

    #[test]
    fn full_suspension_when_shrinking_cannot_cover() {
        let mut cp = ControlPlane::new(&ServiceConfig::new(2));
        // Victim insists on both servers (min == requested == 2).
        cp.submit(tiny("rigid", 3).with_servers(2, 2), 0);
        // Urgent job needs both too → the victim must be fully suspended.
        cp.submit(tiny("urgent", 2).with_servers(2, 2).with_priority(5), 1);
        let report = cp.into_report();
        assert_eq!(report.completed, 2);
        let suspended = report
            .events
            .iter()
            .any(|e| matches!(e.kind, JobEventKind::Preempted { to_servers: 0, .. }));
        assert!(suspended, "victim must be fully suspended");
        let resumed = report
            .events
            .iter()
            .any(|e| e.job == JobId(0) && matches!(e.kind, JobEventKind::Resumed { .. }));
        assert!(resumed, "victim must resume after the urgent job departs");
    }

    #[test]
    fn equal_priority_never_preempts() {
        let mut cp = ControlPlane::new(&ServiceConfig::new(1));
        cp.submit(tiny("a", 2), 0);
        cp.submit(tiny("b", 2), 1);
        let report = cp.into_report();
        assert_eq!(report.preemptions, 0);
        assert_eq!(report.completed, 2);
    }

    #[test]
    fn infeasible_and_invalid_jobs_are_rejected() {
        let mut cp = ControlPlane::new(&ServiceConfig::new(1));
        let whale = JobSpec::new("whale", TransformerConfig::gpt3_28b().with_layers(3000), 1);
        cp.submit(whale, 0);
        cp.submit(tiny("zero-iters", 0), 0);
        let mut wide = tiny("too-wide", 1);
        wide.min_servers = 9;
        wide.servers = 9;
        cp.submit(wide, 0);
        let report = cp.into_report();
        assert_eq!(report.rejected, 3);
        assert_eq!(report.admitted, 0);
        let reasons: Vec<String> = report
            .events
            .iter()
            .filter_map(|e| match &e.kind {
                JobEventKind::Rejected { reason } => Some(reason.to_string()),
                _ => None,
            })
            .collect();
        assert_eq!(reasons.len(), 3);
        assert!(reasons[0].contains("infeasible"));
        assert!(reasons[1].contains("iters"));
        assert!(reasons[2].contains("cluster"));
    }

    #[test]
    fn queue_overflow_sheds_load() {
        let cfg = ServiceConfig::new(1).with_max_queue(1);
        let mut cp = ControlPlane::new(&cfg);
        cp.submit(tiny("run", 2), 0);
        cp.submit(tiny("wait", 2), 0);
        cp.submit(tiny("shed", 2), 0);
        let report = cp.into_report();
        assert_eq!(report.rejected, 1);
        assert!(report.events.iter().any(|e| matches!(
            &e.kind,
            JobEventKind::Rejected {
                reason: RejectReason::QueueFull { .. }
            }
        )));
        assert_eq!(report.completed, 2);
    }

    #[test]
    fn deterministic_given_the_same_submissions() {
        let run = || {
            let mut cp = ControlPlane::new(&ServiceConfig::new(2));
            cp.submit(tiny("a", 2).with_servers(2, 1), 0);
            cp.submit(tiny("b", 2).with_priority(2), 5);
            cp.submit(tiny("c", 1), 10);
            cp.into_report()
        };
        let (r1, r2) = (run(), run());
        assert_eq!(r1.events, r2.events);
        assert_eq!(r1.makespan_ns, r2.makespan_ns);
        assert_eq!(r1.ttfi_ns, r2.ttfi_ns);
    }
}
