//! Verified admission control.
//!
//! Every job is planned through the engine's staged pipeline, then the §8
//! plan-graph verifier re-derives a **provable upper bound** on the lowered
//! iteration's per-GPU peak memory. A job is admitted only when that bound —
//! not the scheduler's own optimistic accounting — fits the slice's GPU
//! budget. This is the PatrickStar critique answered with a certificate:
//! admission decisions are justified by a bound the executor can never
//! exceed, so an admitted job cannot OOM its slice no matter how its
//! iterations interleave.

use crate::job::{JobSpec, RejectReason};
use angel_core::{Engine, EngineConfig, PlanGraph};
use serde::{Deserialize, Serialize};

/// The proof attached to every admission decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AdmissionCertificate {
    /// Slice size the certificate is valid for.
    pub servers: usize,
    /// The verifier's provable per-GPU peak-memory upper bound (bytes).
    pub peak_bound_bytes: u64,
    /// The per-GPU budget of the slice the bound was checked against.
    pub gpu_budget_bytes: u64,
    /// Lowered tasks in the certified iteration (verification cost proxy).
    pub tasks: usize,
}

impl AdmissionCertificate {
    /// The admission predicate itself.
    pub fn fits(&self) -> bool {
        self.peak_bound_bytes <= self.gpu_budget_bytes
    }
}

/// The engine configuration a job runs under on an `servers`-server slice.
/// Slices are disjoint sets of whole servers, so each job sees a private
/// cluster of its slice's size.
pub fn slice_config(spec: &JobSpec, servers: usize) -> EngineConfig {
    EngineConfig::servers(servers).with_batch_size(spec.batch_size)
}

/// Plan `spec` onto an `servers`-server slice and certify it. On success
/// the returned [`Engine`] *is* the job's resumable session — the service
/// steps it, parks it, and splices it onto different slice sizes.
///
/// Failure modes, in checking order:
/// * [`RejectReason::Infeasible`] — the planner itself cannot place the
///   model on the slice (or the verifier found the lowering unclean, which
///   would make any bound unsound);
/// * [`RejectReason::PeakBoundExceedsBudget`] — the plan exists but its
///   *certified* peak does not fit the per-GPU budget.
pub fn admit_at(
    spec: &JobSpec,
    servers: usize,
) -> Result<(Engine, AdmissionCertificate), RejectReason> {
    let config = slice_config(spec, servers);
    let engine =
        Engine::initialize(&spec.model, &config).map_err(|e| RejectReason::Infeasible {
            error: e.to_string(),
        })?;
    let (certificate, clean) = certify(&engine, servers);
    if !clean {
        return Err(RejectReason::Infeasible {
            error: "plan-graph verifier found races or lifetime violations".to_string(),
        });
    }
    if !certificate.fits() {
        return Err(RejectReason::PeakBoundExceedsBudget {
            peak_bound_bytes: certificate.peak_bound_bytes,
            gpu_budget_bytes: certificate.gpu_budget_bytes,
        });
    }
    Ok((engine, certificate))
}

/// Run the plan-graph verifier over `engine`'s lowered iteration and read
/// off the GPU-domain peak bound. Returns the certificate and whether the
/// lowering verified clean (no races, well-formed lifetimes).
pub fn certify(engine: &Engine, servers: usize) -> (AdmissionCertificate, bool) {
    let lowered = engine.lower_iteration();
    let report = PlanGraph::from_sim(&lowered.sim).verify();
    let clean = report.is_clean();
    // An unclean report carries no peak bounds; treat the bound as
    // "unbounded" so the certificate can never admit an unverified plan.
    let mut peak = u64::MAX;
    for (dom, name) in lowered.sim.resources().mem_domains() {
        if name == "gpu-mem" {
            peak = report.peak_bounds.get(dom.0).copied().unwrap_or(u64::MAX);
        }
    }
    (
        AdmissionCertificate {
            servers,
            peak_bound_bytes: peak,
            gpu_budget_bytes: engine.config().gpu_budget(),
            tasks: lowered.sim.num_tasks(),
        },
        clean,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use angel_model::TransformerConfig;

    fn tiny() -> JobSpec {
        JobSpec::new(
            "tiny",
            TransformerConfig::gpt3_1_7b()
                .with_layers(2)
                .with_seq_len(256),
            2,
        )
    }

    #[test]
    fn tiny_job_admits_with_a_fitting_certificate() {
        let (engine, cert) = admit_at(&tiny(), 1).expect("tiny job admits");
        assert!(cert.fits());
        assert!(cert.peak_bound_bytes > 0);
        assert!(cert.tasks > 0);
        assert_eq!(cert.servers, 1);
        assert_eq!(cert.gpu_budget_bytes, engine.config().gpu_budget());
        // The certified bound dominates the *executed* peak of the lowered
        // iteration — that is exactly why it is the admission predicate.
        let lowered = engine.lower_iteration();
        let exec = lowered.sim.run();
        let report = PlanGraph::from_sim(&lowered.sim).verify();
        assert!(report.covers(&exec));
    }

    #[test]
    fn oversized_job_is_infeasible() {
        let spec = JobSpec::new("whale", TransformerConfig::gpt3_28b().with_layers(3000), 1);
        match admit_at(&spec, 1) {
            Err(RejectReason::Infeasible { error }) => {
                assert!(!error.is_empty());
            }
            other => panic!(
                "expected Infeasible, got {other:?}",
                other = other.map(|_| ())
            ),
        }
    }
}
