//! Interconnect links: PCIe, NVLink, NICs and the SSD channel.
//!
//! Section 4.3 of the paper quotes the three I/O speeds that drive all of
//! Angel-PTM's scheduling decisions on an A100 server: GPU memory access at
//! 600 GB/s, CPU↔GPU transfer at 32 GB/s (PCIe), and SSD↔CPU transfer at
//! 3.5 GB/s. Section 6.1 adds NVLink 3.0 inside a server and 16 × 12.5 GB/s
//! RoCE NICs between servers. A [`Link`] carries a bandwidth and a fixed
//! per-operation latency, giving the classic α+β/BW transfer-time model used
//! by the discrete-event executor.

use serde::{Deserialize, Serialize};
use std::fmt;

/// What kind of wire a [`Link`] models. Used by the simulator to decide which
/// contention domain a transfer occupies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LinkClass {
    /// Host ↔ one GPU over PCIe (one independent channel per GPU on the
    /// paper's A100 servers, which have four PCIe switches feeding 8 GPUs).
    Pcie,
    /// GPU ↔ GPU inside a server over NVLink 3.0.
    NvLink,
    /// Server ↔ server over RoCE NICs.
    Nic,
    /// CPU ↔ SSD over NVMe.
    SsdChannel,
}

impl fmt::Display for LinkClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinkClass::Pcie => write!(f, "PCIe"),
            LinkClass::NvLink => write!(f, "NVLink"),
            LinkClass::Nic => write!(f, "NIC"),
            LinkClass::SsdChannel => write!(f, "SSD-channel"),
        }
    }
}

/// A point-to-point or shared interconnect with a linear cost model.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Link {
    pub class: LinkClass,
    /// Sustained bandwidth in bytes/second.
    pub bandwidth: u64,
    /// Fixed per-operation latency in nanoseconds (driver launch, DMA setup,
    /// NVMe command overhead, ...).
    pub latency_ns: u64,
}

impl Link {
    pub fn new(class: LinkClass, bandwidth: u64, latency_ns: u64) -> Self {
        assert!(bandwidth > 0, "a link must have positive bandwidth");
        Self {
            class,
            bandwidth,
            latency_ns,
        }
    }

    /// Time to move `bytes` over this link, in nanoseconds: `α + bytes/β`.
    ///
    /// This is the *one* place the α+β arithmetic lives; every consumer
    /// (simulator transfers, collective cost models, the ZeRO parallel-move
    /// model) prices through it instead of re-deriving
    /// `latency + bytes_over_bandwidth_ns` by hand.
    ///
    /// ```
    /// use angel_hw::{Link, LinkClass};
    /// // The paper's PCIe: 32 GB/s. A 4 MiB page takes ~131 µs + latency.
    /// let pcie = Link::new(LinkClass::Pcie, 32_000_000_000, 10_000);
    /// let t = pcie.transfer_ns(4 * 1024 * 1024);
    /// assert_eq!(t, 10_000 + 131_072);
    /// ```
    pub fn transfer_ns(&self, bytes: u64) -> u64 {
        self.staged_transfer_ns(bytes, 1)
    }

    /// Time for a `steps`-stage operation moving `bytes` through this link:
    /// `steps·α + bytes/β`. Ring/tree collectives pay one latency per step
    /// but stream their wire bytes once — this helper keeps that arithmetic
    /// in one place.
    pub fn staged_transfer_ns(&self, bytes: u64, steps: u64) -> u64 {
        steps * self.latency_ns + bytes_over_bandwidth_ns(bytes, self.bandwidth)
    }

    /// Alias of [`Link::transfer_ns`], kept for the original call sites.
    pub fn transfer_time_ns(&self, bytes: u64) -> u64 {
        self.transfer_ns(bytes)
    }

    /// Effective bandwidth achieved for a transfer of `bytes`, accounting for
    /// the fixed latency. Small transfers waste the wire — this is the
    /// quantitative basis for the paper's choice of the 4 MiB page size
    /// ("the minimum Page size that can fully utilize the PCIe bandwidth").
    pub fn effective_bandwidth(&self, bytes: u64) -> f64 {
        if bytes == 0 {
            return 0.0;
        }
        let t = self.transfer_time_ns(bytes) as f64 / 1e9;
        bytes as f64 / t
    }
}

/// `bytes / bandwidth` in nanoseconds with round-half-up, avoiding f64 in the
/// hot path of the simulator.
pub fn bytes_over_bandwidth_ns(bytes: u64, bandwidth: u64) -> u64 {
    debug_assert!(bandwidth > 0);
    // time_ns = bytes * 1e9 / bandwidth; use u128 to avoid overflow on
    // multi-terabyte transfers.
    ((bytes as u128 * 1_000_000_000u128 + bandwidth as u128 / 2) / bandwidth as u128) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GB_PER_S;

    #[test]
    fn transfer_time_linear_model() {
        let link = Link::new(LinkClass::Pcie, 32 * GB_PER_S, 5_000);
        assert_eq!(link.transfer_time_ns(0), 5_000);
        // 32 GB over a 32 GB/s link = 1 second.
        assert_eq!(link.transfer_time_ns(32 * GB_PER_S), 5_000 + 1_000_000_000);
        // transfer_ns is the canonical spelling; transfer_time_ns delegates.
        assert_eq!(
            link.transfer_ns(32 * GB_PER_S),
            link.transfer_time_ns(32 * GB_PER_S)
        );
    }

    #[test]
    fn staged_transfer_pays_latency_per_step() {
        let link = Link::new(LinkClass::Nic, GB_PER_S, 20_000);
        let one = link.staged_transfer_ns(GB_PER_S, 1);
        let seven = link.staged_transfer_ns(GB_PER_S, 7);
        assert_eq!(one, link.transfer_ns(GB_PER_S));
        assert_eq!(seven - one, 6 * 20_000);
    }

    #[test]
    fn effective_bandwidth_saturates_with_size() {
        let link = Link::new(LinkClass::Pcie, 32 * GB_PER_S, 10_000);
        let small = link.effective_bandwidth(64 * 1024);
        let page = link.effective_bandwidth(4 * 1024 * 1024);
        let huge = link.effective_bandwidth(1 << 30);
        assert!(small < page && page < huge);
        // A 4 MiB page should already achieve >90% of peak PCIe bandwidth —
        // the paper's justification for the 4 MiB page size.
        assert!(page > 0.90 * (32 * GB_PER_S) as f64, "page bw = {page}");
        // While a 64 KiB transfer wastes most of the wire.
        assert!(small < 0.60 * (32 * GB_PER_S) as f64, "small bw = {small}");
    }

    #[test]
    fn no_overflow_on_huge_transfers() {
        // 11 TB over the SSD channel.
        let ssd = Link::new(LinkClass::SsdChannel, 3_500_000_000, 100_000);
        let t = ssd.transfer_time_ns(11 * crate::TIB);
        // ~3455 seconds.
        assert!(t > 3_000_000_000_000 && t < 4_000_000_000_000);
    }

    #[test]
    fn rounding_is_half_up() {
        assert_eq!(bytes_over_bandwidth_ns(1, 1_000_000_000), 1);
        assert_eq!(bytes_over_bandwidth_ns(1, 2_000_000_000), 1); // 0.5 rounds up
        assert_eq!(bytes_over_bandwidth_ns(1, 3_000_000_000), 0); // 0.33 rounds down
    }
}
