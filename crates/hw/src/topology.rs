//! Server and cluster topologies.
//!
//! [`ServerSpec::a100_tencent`] encodes the evaluation machine from Table 3 of
//! the paper verbatim; [`ClusterSpec`] scales it out to the multi-server
//! settings used in the scalability experiments (Figures 8 and 9: up to 96
//! servers / 768 GPUs).

use crate::device::{Device, DeviceId, DeviceKind};
use crate::link::{Link, LinkClass};
use crate::{GB_PER_S, GIB, TIB};
use serde::{Deserialize, Serialize};

/// One GPU server: a set of GPUs, a host memory domain, optional SSD storage,
/// and the links between them.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServerSpec {
    /// Human-readable name used in reports.
    pub name: String,
    pub gpus: Vec<Device>,
    pub cpu: Device,
    /// `None` models a server whose SSD tier is not used for training
    /// (the default for all paper experiments except Section 6.5).
    pub ssd: Option<Device>,
    /// Host ↔ GPU link. The paper's A100 servers expose an independent PCIe
    /// channel per GPU (four switches × two GPUs), so this link is replicated
    /// per GPU by the simulator.
    pub pcie: Link,
    /// GPU ↔ GPU link inside the server.
    pub nvlink: Link,
    /// CPU ↔ SSD link.
    pub ssd_link: Link,
    /// Number of CPU worker threads available for optimizer updates.
    pub cpu_workers: usize,
}

impl ServerSpec {
    /// The production A100 server from Table 3 / Sections 4.3 and 6.1:
    ///
    /// * 8 × NVIDIA A100 40 GiB HBM2 (600 GB/s local bandwidth),
    /// * 32 × 32 GiB DDR4 = 1 TiB host memory,
    /// * 11 TB NVMe SSD at 3.5 GB/s peak,
    /// * PCIe at 32 GB/s per GPU, NVLink 3.0 at 200 GB/s,
    /// * 4 × 48-core EPYC CPUs (we expose 192 worker threads).
    pub fn a100_tencent() -> Self {
        Self {
            name: "tencent-a100".to_string(),
            gpus: (0..8)
                .map(|i| Device::new(DeviceId::gpu(i), 40 * GIB, 600 * GB_PER_S))
                .collect(),
            cpu: Device::new(DeviceId::CPU, 32 * 32 * GIB, 170 * GB_PER_S),
            ssd: Some(Device::new(DeviceId::SSD, 11 * TIB, 3_500_000_000)),
            pcie: Link::new(LinkClass::Pcie, 32 * GB_PER_S, 10_000),
            nvlink: Link::new(LinkClass::NvLink, 200 * GB_PER_S, 5_000),
            ssd_link: Link::new(LinkClass::SsdChannel, 3_500_000_000, 100_000),
            cpu_workers: 192,
        }
    }

    /// A scaled-down server for fast unit tests: 4 GPUs × 1 GiB, 8 GiB host,
    /// 64 GiB SSD, same relative bandwidths as the A100 box.
    pub fn tiny_test() -> Self {
        Self {
            name: "tiny-test".to_string(),
            gpus: (0..4)
                .map(|i| Device::new(DeviceId::gpu(i), GIB, 600 * GB_PER_S))
                .collect(),
            cpu: Device::new(DeviceId::CPU, 8 * GIB, 170 * GB_PER_S),
            ssd: Some(Device::new(DeviceId::SSD, 64 * GIB, 3_500_000_000)),
            pcie: Link::new(LinkClass::Pcie, 32 * GB_PER_S, 10_000),
            nvlink: Link::new(LinkClass::NvLink, 200 * GB_PER_S, 5_000),
            ssd_link: Link::new(LinkClass::SsdChannel, 3_500_000_000, 100_000),
            cpu_workers: 8,
        }
    }

    /// Number of GPUs on this server.
    pub fn num_gpus(&self) -> usize {
        self.gpus.len()
    }

    /// The `index`-th GPU device.
    pub fn gpu(&self, index: usize) -> &Device {
        &self.gpus[index]
    }

    /// Look up any device on this server by id. Returns `None` for a GPU
    /// index out of range or a missing SSD tier.
    pub fn device(&self, id: DeviceId) -> Option<&Device> {
        match id.kind {
            DeviceKind::Gpu => self.gpus.get(id.index),
            DeviceKind::Cpu => Some(&self.cpu),
            DeviceKind::Ssd => self.ssd.as_ref(),
        }
    }

    /// Total GPU memory on the server.
    pub fn total_gpu_memory(&self) -> u64 {
        self.gpus.iter().map(|g| g.capacity).sum()
    }

    /// The link used for a transfer between two device tiers, or `None` when
    /// no direct link exists (e.g. GPU ↔ SSD must be staged through the CPU,
    /// exactly as on real hardware — the workflow of Figure 1).
    pub fn link_between(&self, a: DeviceKind, b: DeviceKind) -> Option<&Link> {
        use DeviceKind::*;
        match (a, b) {
            (Gpu, Cpu) | (Cpu, Gpu) => Some(&self.pcie),
            (Gpu, Gpu) => Some(&self.nvlink),
            (Cpu, Ssd) | (Ssd, Cpu) => Some(&self.ssd_link),
            (Gpu, Ssd) | (Ssd, Gpu) => None,
            (Cpu, Cpu) | (Ssd, Ssd) => None,
        }
    }

    /// Remove the SSD tier (the default configuration in Sections 6.2–6.4).
    pub fn without_ssd(mut self) -> Self {
        self.ssd = None;
        self
    }
}

/// A homogeneous cluster of [`ServerSpec`]s connected by RoCE NICs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterSpec {
    pub server: ServerSpec,
    pub num_servers: usize,
    /// Aggregate inter-server NIC bandwidth per server. The paper: 16 NICs ×
    /// 12.5 GB/s = 200 GB/s aggregate per server.
    pub nic: Link,
}

impl ClusterSpec {
    /// A cluster of `num_servers` Tencent A100 servers with 16 × 12.5 GB/s
    /// RoCE NICs each (Section 6.1).
    pub fn a100_tencent(num_servers: usize) -> Self {
        assert!(num_servers >= 1);
        Self {
            server: ServerSpec::a100_tencent(),
            num_servers,
            nic: Link::new(LinkClass::Nic, 16 * 12_500_000_000, 20_000),
        }
    }

    /// Single-server "cluster" — the Table 5 / Figure 7 (1×8) setting.
    pub fn single_a100() -> Self {
        Self::a100_tencent(1)
    }

    /// Total number of GPUs across the cluster.
    pub fn total_gpus(&self) -> usize {
        self.num_servers * self.server.num_gpus()
    }

    /// The per-GPU share of a server's aggregate NIC bandwidth: when all
    /// GPUs of a server participate in an inter-server collective, each
    /// rank's stream contends for the same RoCE fabric. (Per-axis link
    /// selection lives on [`crate::mesh::DeviceMesh`]; this helper only
    /// derates the wire.)
    pub fn shared_nic(&self) -> Link {
        Link::new(
            self.nic.class,
            (self.nic.bandwidth / self.server.num_gpus() as u64).max(1),
            self.nic.latency_ns,
        )
    }

    /// The same server design and fabric at a different fleet size — the
    /// surviving cluster after a server loss, or the grown cluster after an
    /// elastic resize. Per-server hardware (GPUs, links, SSD) is unchanged;
    /// only the server count moves.
    pub fn resized(&self, num_servers: usize) -> Self {
        assert!(num_servers >= 1);
        Self {
            server: self.server.clone(),
            num_servers,
            nic: self.nic.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_configuration() {
        let s = ServerSpec::a100_tencent();
        assert_eq!(s.num_gpus(), 8);
        assert_eq!(s.gpu(0).capacity, 40 * GIB);
        assert_eq!(s.cpu.capacity, 1024 * GIB); // 32 × 32 GiB
        assert_eq!(s.ssd.as_ref().unwrap().capacity, 11 * TIB);
        assert_eq!(s.pcie.bandwidth, 32 * GB_PER_S);
        assert_eq!(s.nvlink.bandwidth, 200 * GB_PER_S);
        assert_eq!(s.ssd_link.bandwidth, 3_500_000_000);
        assert_eq!(s.total_gpu_memory(), 320 * GIB);
    }

    #[test]
    fn device_lookup() {
        let s = ServerSpec::a100_tencent();
        assert!(s.device(DeviceId::gpu(7)).is_some());
        assert!(s.device(DeviceId::gpu(8)).is_none());
        assert!(s.device(DeviceId::CPU).is_some());
        assert!(s.device(DeviceId::SSD).is_some());
        assert!(s.without_ssd().device(DeviceId::SSD).is_none());
    }

    #[test]
    fn link_routing_matches_hardware() {
        let s = ServerSpec::a100_tencent();
        use DeviceKind::*;
        assert_eq!(s.link_between(Gpu, Cpu).unwrap().class, LinkClass::Pcie);
        assert_eq!(s.link_between(Gpu, Gpu).unwrap().class, LinkClass::NvLink);
        assert_eq!(
            s.link_between(Cpu, Ssd).unwrap().class,
            LinkClass::SsdChannel
        );
        // No direct GPU↔SSD path: must stage through the CPU (Figure 1).
        assert!(s.link_between(Gpu, Ssd).is_none());
    }

    #[test]
    fn cluster_scaling() {
        let c = ClusterSpec::a100_tencent(96);
        assert_eq!(c.total_gpus(), 768); // the Figure 8 maximum
        assert_eq!(c.nic.bandwidth, 200_000_000_000); // 16 × 12.5 GB/s
                                                      // 8 GPUs share the 200 GB/s fabric → 25 GB/s per rank stream.
        let shared = c.shared_nic();
        assert_eq!(shared.class, LinkClass::Nic);
        assert_eq!(shared.bandwidth, 25_000_000_000);
        assert_eq!(shared.latency_ns, c.nic.latency_ns);
    }
}
