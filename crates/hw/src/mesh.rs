//! Device meshes: the physical side of a dp × pp × tp parallelism plan.
//!
//! Angel-PTM's headline experiments run across many 8×A100 servers joined by
//! RoCE NICs (Table 3). A [`DeviceMesh`] maps the three logical parallelism
//! axes onto that hardware: ranks are laid out with **tensor parallelism
//! innermost** (consecutive ranks), pipeline parallelism next, and data
//! parallelism outermost — the layout Megatron-LM and veScale use, chosen so
//! the most latency-sensitive groups (TP all-reduces every layer) sit on the
//! fastest links (NVLink inside one server) while the most bandwidth-tolerant
//! groups (DP gradient collectives, once per iteration) are the ones that
//! cross the NIC fabric.
//!
//! The mesh answers the questions the communicator and the planner ask:
//! where does rank *r* live (`placement`), who is in its group along an axis
//! (`group_ranks`), how many group members share a server
//! (`colocated_per_server`), and which wire a group's collective rides
//! (`axis_link`).

use crate::link::Link;
use crate::topology::ClusterSpec;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The three parallelism axes, outermost → innermost in the rank layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MeshAxis {
    /// Data parallelism (ZeRO sharding / gradient collectives).
    Dp,
    /// Pipeline parallelism (layer stages, p2p activations).
    Pp,
    /// Tensor parallelism (intra-layer splits, per-layer all-reduces).
    Tp,
}

impl fmt::Display for MeshAxis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MeshAxis::Dp => write!(f, "dp"),
            MeshAxis::Pp => write!(f, "pp"),
            MeshAxis::Tp => write!(f, "tp"),
        }
    }
}

/// Physical placement of one mesh rank.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MeshCoord {
    /// Which server the rank's GPU sits in.
    pub server: usize,
    /// GPU slot within the server.
    pub gpu: usize,
}

/// Why a (dp, pp, tp) factorization cannot be laid onto a cluster.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MeshError {
    /// `dp × pp × tp` must equal the cluster's GPU count exactly.
    SizeMismatch {
        dp: usize,
        pp: usize,
        tp: usize,
        total_gpus: usize,
    },
    /// TP groups must fit inside one server (NVLink domain): `tp` must
    /// divide the per-server GPU count.
    TpSpansServers { tp: usize, gpus_per_server: usize },
    /// Every axis degree must be ≥ 1.
    ZeroAxis,
}

impl fmt::Display for MeshError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MeshError::SizeMismatch {
                dp,
                pp,
                tp,
                total_gpus,
            } => write!(
                f,
                "dp({dp}) × pp({pp}) × tp({tp}) = {} must equal the cluster's {total_gpus} GPUs",
                dp * pp * tp
            ),
            MeshError::TpSpansServers {
                tp,
                gpus_per_server,
            } => write!(
                f,
                "tp({tp}) must divide the {gpus_per_server} GPUs of one server \
                 (TP groups cannot straddle the NVLink domain)"
            ),
            MeshError::ZeroAxis => write!(f, "every mesh axis must have degree >= 1"),
        }
    }
}

impl std::error::Error for MeshError {}

/// A dp × pp × tp mesh over an N-server cluster.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceMesh {
    cluster: ClusterSpec,
    dp: usize,
    pp: usize,
    tp: usize,
}

impl DeviceMesh {
    /// Lay a (dp, pp, tp) factorization onto `cluster`, tp innermost.
    pub fn new(cluster: ClusterSpec, dp: usize, pp: usize, tp: usize) -> Result<Self, MeshError> {
        if dp == 0 || pp == 0 || tp == 0 {
            return Err(MeshError::ZeroAxis);
        }
        let total = cluster.total_gpus();
        if dp * pp * tp != total {
            return Err(MeshError::SizeMismatch {
                dp,
                pp,
                tp,
                total_gpus: total,
            });
        }
        let g = cluster.server.num_gpus();
        if tp > g || !g.is_multiple_of(tp) {
            return Err(MeshError::TpSpansServers {
                tp,
                gpus_per_server: g,
            });
        }
        Ok(Self {
            cluster,
            dp,
            pp,
            tp,
        })
    }

    /// The pure data-parallel mesh (dp = every GPU) — Angel-PTM's default
    /// ZeRO configuration, and the degenerate point every earlier PR lowered.
    pub fn data_parallel(cluster: ClusterSpec) -> Self {
        let dp = cluster.total_gpus();
        Self {
            cluster,
            dp,
            pp: 1,
            tp: 1,
        }
    }

    pub fn cluster(&self) -> &ClusterSpec {
        &self.cluster
    }

    pub fn dp(&self) -> usize {
        self.dp
    }

    pub fn pp(&self) -> usize {
        self.pp
    }

    pub fn tp(&self) -> usize {
        self.tp
    }

    /// Total ranks in the mesh (= the cluster's GPUs).
    pub fn num_ranks(&self) -> usize {
        self.dp * self.pp * self.tp
    }

    /// Group size along `axis`.
    pub fn axis_size(&self, axis: MeshAxis) -> usize {
        match axis {
            MeshAxis::Dp => self.dp,
            MeshAxis::Pp => self.pp,
            MeshAxis::Tp => self.tp,
        }
    }

    /// Rank distance between consecutive members of an `axis` group
    /// (tp innermost ⇒ stride 1; dp outermost ⇒ stride pp·tp).
    pub fn axis_stride(&self, axis: MeshAxis) -> usize {
        match axis {
            MeshAxis::Tp => 1,
            MeshAxis::Pp => self.tp,
            MeshAxis::Dp => self.pp * self.tp,
        }
    }

    /// The global rank at mesh coordinates (dp_idx, pp_idx, tp_idx).
    pub fn rank_of(&self, dp_idx: usize, pp_idx: usize, tp_idx: usize) -> usize {
        debug_assert!(dp_idx < self.dp && pp_idx < self.pp && tp_idx < self.tp);
        (dp_idx * self.pp + pp_idx) * self.tp + tp_idx
    }

    /// The (dp_idx, pp_idx, tp_idx) coordinates of a global rank.
    pub fn coords_of(&self, rank: usize) -> (usize, usize, usize) {
        debug_assert!(rank < self.num_ranks());
        let tp_idx = rank % self.tp;
        let pp_idx = (rank / self.tp) % self.pp;
        let dp_idx = rank / (self.tp * self.pp);
        (dp_idx, pp_idx, tp_idx)
    }

    /// Physical placement of a rank: ranks fill servers in order, so rank
    /// `r` sits on server `r / gpus_per_server`, GPU slot `r mod g`.
    pub fn placement(&self, rank: usize) -> MeshCoord {
        let g = self.cluster.server.num_gpus();
        MeshCoord {
            server: rank / g,
            gpu: rank % g,
        }
    }

    /// All ranks of `rank`'s group along `axis` (including `rank`), in
    /// group order.
    pub fn group_ranks(&self, axis: MeshAxis, rank: usize) -> Vec<usize> {
        let (dp_idx, pp_idx, tp_idx) = self.coords_of(rank);
        (0..self.axis_size(axis))
            .map(|i| match axis {
                MeshAxis::Dp => self.rank_of(i, pp_idx, tp_idx),
                MeshAxis::Pp => self.rank_of(dp_idx, i, tp_idx),
                MeshAxis::Tp => self.rank_of(dp_idx, pp_idx, i),
            })
            .collect()
    }

    /// How many members of one `axis` group share a server. The layout is
    /// homogeneous, so this is the same for every group of the axis:
    /// members are `stride` ranks apart, a server holds `g` consecutive
    /// ranks, so `min(size, g / stride)` members land together (1 when the
    /// stride already exceeds a server).
    pub fn colocated_per_server(&self, axis: MeshAxis) -> usize {
        let g = self.cluster.server.num_gpus();
        let stride = self.axis_stride(axis);
        if stride >= g {
            1
        } else {
            self.axis_size(axis).min(g / stride).max(1)
        }
    }

    /// Servers spanned by one `axis` group.
    pub fn group_servers(&self, axis: MeshAxis) -> usize {
        self.axis_size(axis)
            .div_ceil(self.colocated_per_server(axis))
    }

    /// The wire an `axis` group's collectives ride: NVLink when the whole
    /// group sits inside one server, the RoCE NIC once it spans servers.
    /// This per-axis selection replaces the old whole-cluster
    /// `cross_gpu_link` shortcut.
    pub fn axis_link(&self, axis: MeshAxis) -> &Link {
        if self.group_servers(axis) <= 1 {
            &self.cluster.server.nvlink
        } else {
            &self.cluster.nic
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LinkClass;

    fn mesh(servers: usize, dp: usize, pp: usize, tp: usize) -> DeviceMesh {
        DeviceMesh::new(ClusterSpec::a100_tencent(servers), dp, pp, tp).unwrap()
    }

    #[test]
    fn validation_rejects_bad_factorizations() {
        let cluster = ClusterSpec::a100_tencent(2); // 16 GPUs
        assert!(matches!(
            DeviceMesh::new(cluster.clone(), 4, 1, 2),
            Err(MeshError::SizeMismatch { total_gpus: 16, .. })
        ));
        // tp = 16 exceeds one server's 8 GPUs.
        assert!(matches!(
            DeviceMesh::new(cluster.clone(), 1, 1, 16),
            Err(MeshError::TpSpansServers {
                gpus_per_server: 8,
                ..
            })
        ));
        // tp = 3 does not divide 8.
        assert!(matches!(
            DeviceMesh::new(
                ClusterSpec::a100_tencent(3), // 24 GPUs
                8,
                1,
                3
            ),
            Err(MeshError::TpSpansServers { .. })
        ));
        assert!(matches!(
            DeviceMesh::new(cluster, 0, 1, 1),
            Err(MeshError::ZeroAxis)
        ));
    }

    #[test]
    fn tp_innermost_rank_layout() {
        let m = mesh(2, 2, 2, 4); // 16 GPUs = 2dp × 2pp × 4tp
        assert_eq!(m.rank_of(0, 0, 0), 0);
        assert_eq!(m.rank_of(0, 0, 3), 3);
        assert_eq!(m.rank_of(0, 1, 0), 4);
        assert_eq!(m.rank_of(1, 0, 0), 8);
        for r in 0..16 {
            let (d, p, t) = m.coords_of(r);
            assert_eq!(m.rank_of(d, p, t), r, "rank {r} round-trips");
        }
    }

    #[test]
    fn placement_fills_servers_in_order() {
        let m = mesh(2, 2, 2, 4);
        assert_eq!(m.placement(0), MeshCoord { server: 0, gpu: 0 });
        assert_eq!(m.placement(7), MeshCoord { server: 0, gpu: 7 });
        assert_eq!(m.placement(8), MeshCoord { server: 1, gpu: 0 });
        assert_eq!(m.placement(15), MeshCoord { server: 1, gpu: 7 });
    }

    #[test]
    fn tp_groups_stay_inside_a_server() {
        // Any valid mesh: every tp group's ranks land on one server.
        for (servers, dp, pp, tp) in [(2, 2, 2, 4), (4, 16, 1, 2), (1, 1, 1, 8), (16, 16, 1, 8)] {
            let m = mesh(servers, dp, pp, tp);
            for rank in 0..m.num_ranks() {
                let servers_touched: std::collections::BTreeSet<usize> = m
                    .group_ranks(MeshAxis::Tp, rank)
                    .into_iter()
                    .map(|r| m.placement(r).server)
                    .collect();
                assert_eq!(servers_touched.len(), 1, "tp group of rank {rank}");
            }
            assert_eq!(m.axis_link(MeshAxis::Tp).class, LinkClass::NvLink);
        }
    }

    #[test]
    fn dp_groups_cross_servers_when_model_parallelism_fills_one() {
        // tp × pp = 8 fills a server, so every dp peer is on another server.
        let m = mesh(4, 4, 4, 2);
        assert_eq!(m.colocated_per_server(MeshAxis::Dp), 1);
        assert_eq!(m.group_servers(MeshAxis::Dp), 4);
        assert_eq!(m.axis_link(MeshAxis::Dp).class, LinkClass::Nic);
        let group = m.group_ranks(MeshAxis::Dp, 0);
        assert_eq!(group, vec![0, 8, 16, 24]);
        let servers: Vec<usize> = group.iter().map(|&r| m.placement(r).server).collect();
        assert_eq!(servers, vec![0, 1, 2, 3]);
    }

    #[test]
    fn pure_data_parallel_matches_the_cluster() {
        let m = DeviceMesh::data_parallel(ClusterSpec::a100_tencent(4));
        assert_eq!(m.dp(), 32);
        assert_eq!((m.pp(), m.tp()), (1, 1));
        // 8 dp peers share each server; the group spans 4 servers → NIC.
        assert_eq!(m.colocated_per_server(MeshAxis::Dp), 8);
        assert_eq!(m.group_servers(MeshAxis::Dp), 4);
        assert_eq!(m.axis_link(MeshAxis::Dp).class, LinkClass::Nic);
        // On one server the same mesh rides NVLink end to end.
        let single = DeviceMesh::data_parallel(ClusterSpec::single_a100());
        assert_eq!(single.axis_link(MeshAxis::Dp).class, LinkClass::NvLink);
    }

    #[test]
    fn group_members_agree_across_the_group() {
        let m = mesh(2, 4, 2, 2);
        let g0 = m.group_ranks(MeshAxis::Dp, 0);
        for &r in &g0 {
            assert_eq!(m.group_ranks(MeshAxis::Dp, r), g0, "rank {r}");
        }
    }
}
