//! Device meshes: the physical side of a dp × pp × tp parallelism plan.
//!
//! Angel-PTM's headline experiments run across many 8×A100 servers joined by
//! RoCE NICs (Table 3). A [`DeviceMesh`] maps the three logical parallelism
//! axes onto that hardware: ranks are laid out with **tensor parallelism
//! innermost** (consecutive ranks), pipeline parallelism next, and data
//! parallelism outermost — the layout Megatron-LM and veScale use, chosen so
//! the most latency-sensitive groups (TP all-reduces every layer) sit on the
//! fastest links (NVLink inside one server) while the most bandwidth-tolerant
//! groups (DP gradient collectives, once per iteration) are the ones that
//! cross the NIC fabric.
//!
//! The mesh answers the questions the communicator and the planner ask:
//! where does rank *r* live (`placement`), who is in its group along an axis
//! (`group_ranks`), how many group members share a server
//! (`colocated_per_server`), and which wire a group's collective rides
//! (`axis_link`).

use crate::link::Link;
use crate::topology::ClusterSpec;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The three parallelism axes, outermost → innermost in the rank layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MeshAxis {
    /// Data parallelism (ZeRO sharding / gradient collectives).
    Dp,
    /// Pipeline parallelism (layer stages, p2p activations).
    Pp,
    /// Tensor parallelism (intra-layer splits, per-layer all-reduces).
    Tp,
}

impl fmt::Display for MeshAxis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MeshAxis::Dp => write!(f, "dp"),
            MeshAxis::Pp => write!(f, "pp"),
            MeshAxis::Tp => write!(f, "tp"),
        }
    }
}

/// Physical placement of one mesh rank.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MeshCoord {
    /// Which server the rank's GPU sits in.
    pub server: usize,
    /// GPU slot within the server.
    pub gpu: usize,
}

/// Why a (dp, pp, tp) factorization cannot be laid onto a cluster.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MeshError {
    /// `dp × pp × tp` must equal the cluster's GPU count exactly.
    SizeMismatch {
        dp: usize,
        pp: usize,
        tp: usize,
        total_gpus: usize,
    },
    /// TP groups must fit inside one server (NVLink domain): `tp` must
    /// divide the per-server GPU count.
    TpSpansServers { tp: usize, gpus_per_server: usize },
    /// Every axis degree must be ≥ 1.
    ZeroAxis,
}

impl fmt::Display for MeshError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MeshError::SizeMismatch {
                dp,
                pp,
                tp,
                total_gpus,
            } => write!(
                f,
                "dp({dp}) × pp({pp}) × tp({tp}) = {} must equal the cluster's {total_gpus} GPUs",
                dp * pp * tp
            ),
            MeshError::TpSpansServers {
                tp,
                gpus_per_server,
            } => write!(
                f,
                "tp({tp}) must divide the {gpus_per_server} GPUs of one server \
                 (TP groups cannot straddle the NVLink domain)"
            ),
            MeshError::ZeroAxis => write!(f, "every mesh axis must have degree >= 1"),
        }
    }
}

impl std::error::Error for MeshError {}

/// A dp × pp × tp mesh over an N-server cluster.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceMesh {
    cluster: ClusterSpec,
    dp: usize,
    pp: usize,
    tp: usize,
}

impl DeviceMesh {
    /// Lay a (dp, pp, tp) factorization onto `cluster`, tp innermost.
    pub fn new(cluster: ClusterSpec, dp: usize, pp: usize, tp: usize) -> Result<Self, MeshError> {
        if dp == 0 || pp == 0 || tp == 0 {
            return Err(MeshError::ZeroAxis);
        }
        let total = cluster.total_gpus();
        if dp * pp * tp != total {
            return Err(MeshError::SizeMismatch {
                dp,
                pp,
                tp,
                total_gpus: total,
            });
        }
        let g = cluster.server.num_gpus();
        if tp > g || !g.is_multiple_of(tp) {
            return Err(MeshError::TpSpansServers {
                tp,
                gpus_per_server: g,
            });
        }
        Ok(Self {
            cluster,
            dp,
            pp,
            tp,
        })
    }

    /// The pure data-parallel mesh (dp = every GPU) — Angel-PTM's default
    /// ZeRO configuration, and the degenerate point every earlier PR lowered.
    pub fn data_parallel(cluster: ClusterSpec) -> Self {
        let dp = cluster.total_gpus();
        Self {
            cluster,
            dp,
            pp: 1,
            tp: 1,
        }
    }

    /// The same logical mesh on a resized fleet: tp and pp are preserved
    /// (they shape the lowered kernels and the pipeline partition), and the
    /// dp axis absorbs the server change — the reshape an online replanner
    /// applies after a server loss or an elastic grow. Errors when the
    /// model-parallel block `tp × pp` does not divide the new GPU count.
    pub fn resized(&self, num_servers: usize) -> Result<Self, MeshError> {
        let cluster = self.cluster.resized(num_servers);
        let mp = self.pp * self.tp;
        let dp = cluster.total_gpus() / mp.max(1);
        Self::new(cluster, dp.max(1), self.pp, self.tp)
    }

    pub fn cluster(&self) -> &ClusterSpec {
        &self.cluster
    }

    pub fn dp(&self) -> usize {
        self.dp
    }

    pub fn pp(&self) -> usize {
        self.pp
    }

    pub fn tp(&self) -> usize {
        self.tp
    }

    /// Total ranks in the mesh (= the cluster's GPUs).
    pub fn num_ranks(&self) -> usize {
        self.dp * self.pp * self.tp
    }

    /// Group size along `axis`.
    pub fn axis_size(&self, axis: MeshAxis) -> usize {
        match axis {
            MeshAxis::Dp => self.dp,
            MeshAxis::Pp => self.pp,
            MeshAxis::Tp => self.tp,
        }
    }

    /// Rank distance between consecutive members of an `axis` group
    /// (tp innermost ⇒ stride 1; dp outermost ⇒ stride pp·tp).
    pub fn axis_stride(&self, axis: MeshAxis) -> usize {
        match axis {
            MeshAxis::Tp => 1,
            MeshAxis::Pp => self.tp,
            MeshAxis::Dp => self.pp * self.tp,
        }
    }

    /// The global rank at mesh coordinates (dp_idx, pp_idx, tp_idx).
    pub fn rank_of(&self, dp_idx: usize, pp_idx: usize, tp_idx: usize) -> usize {
        debug_assert!(dp_idx < self.dp && pp_idx < self.pp && tp_idx < self.tp);
        (dp_idx * self.pp + pp_idx) * self.tp + tp_idx
    }

    /// The (dp_idx, pp_idx, tp_idx) coordinates of a global rank.
    pub fn coords_of(&self, rank: usize) -> (usize, usize, usize) {
        debug_assert!(rank < self.num_ranks());
        let tp_idx = rank % self.tp;
        let pp_idx = (rank / self.tp) % self.pp;
        let dp_idx = rank / (self.tp * self.pp);
        (dp_idx, pp_idx, tp_idx)
    }

    /// Physical placement of a rank: ranks fill servers in order, so rank
    /// `r` sits on server `r / gpus_per_server`, GPU slot `r mod g`.
    pub fn placement(&self, rank: usize) -> MeshCoord {
        let g = self.cluster.server.num_gpus();
        MeshCoord {
            server: rank / g,
            gpu: rank % g,
        }
    }

    /// All ranks of `rank`'s group along `axis` (including `rank`), in
    /// group order.
    pub fn group_ranks(&self, axis: MeshAxis, rank: usize) -> Vec<usize> {
        let (dp_idx, pp_idx, tp_idx) = self.coords_of(rank);
        (0..self.axis_size(axis))
            .map(|i| match axis {
                MeshAxis::Dp => self.rank_of(i, pp_idx, tp_idx),
                MeshAxis::Pp => self.rank_of(dp_idx, i, tp_idx),
                MeshAxis::Tp => self.rank_of(dp_idx, pp_idx, i),
            })
            .collect()
    }

    /// How many members of one `axis` group share a server. The layout is
    /// homogeneous, so this is the same for every group of the axis:
    /// members are `stride` ranks apart, a server holds `g` consecutive
    /// ranks, so `min(size, g / stride)` members land together (1 when the
    /// stride already exceeds a server).
    pub fn colocated_per_server(&self, axis: MeshAxis) -> usize {
        let g = self.cluster.server.num_gpus();
        let stride = self.axis_stride(axis);
        if stride >= g {
            1
        } else {
            self.axis_size(axis).min(g / stride).max(1)
        }
    }

    /// Servers spanned by one `axis` group.
    pub fn group_servers(&self, axis: MeshAxis) -> usize {
        self.axis_size(axis)
            .div_ceil(self.colocated_per_server(axis))
    }

    /// The wire an `axis` group's collectives ride: NVLink when the whole
    /// group sits inside one server, the RoCE NIC once it spans servers.
    /// This per-axis selection replaces the old whole-cluster
    /// `cross_gpu_link` shortcut.
    pub fn axis_link(&self, axis: MeshAxis) -> &Link {
        if self.group_servers(axis) <= 1 {
            &self.cluster.server.nvlink
        } else {
            &self.cluster.nic
        }
    }

    // ---- Group enumeration and SPMD symmetry ----------------------------
    //
    // The SPMD verifier reasons about *concrete* group instances (the dp
    // group containing rank 7, the third tp group, ...) rather than the
    // per-axis layout summaries above, and exploits the homogeneous
    // dp-outer/pp-middle/tp-inner layout to verify one representative rank
    // per equivalence class. These helpers give groups stable indices and
    // name the symmetry.

    /// Number of distinct groups along `axis` (every rank belongs to
    /// exactly one, so this is `num_ranks / axis_size`).
    pub fn num_groups(&self, axis: MeshAxis) -> usize {
        self.num_ranks() / self.axis_size(axis)
    }

    /// Canonical index of `rank`'s group along `axis`, in
    /// `0..num_groups(axis)`: the rank's coordinates on the *other* two
    /// axes, flattened in (outer, inner) order.
    pub fn group_index(&self, axis: MeshAxis, rank: usize) -> usize {
        let (d, p, t) = self.coords_of(rank);
        match axis {
            MeshAxis::Dp => p * self.tp + t,
            MeshAxis::Pp => d * self.tp + t,
            MeshAxis::Tp => d * self.pp + p,
        }
    }

    /// Members of group `index` along `axis`, in group (axis-coordinate)
    /// order — the inverse of [`DeviceMesh::group_index`].
    pub fn group_members(&self, axis: MeshAxis, index: usize) -> Vec<usize> {
        debug_assert!(index < self.num_groups(axis));
        (0..self.axis_size(axis))
            .map(|i| match axis {
                MeshAxis::Dp => self.rank_of(i, index / self.tp, index % self.tp),
                MeshAxis::Pp => self.rank_of(index / self.tp, i, index % self.tp),
                MeshAxis::Tp => self.rank_of(index / self.pp, index % self.pp, i),
            })
            .collect()
    }

    /// The pipeline neighbors of `rank`: the same (dp, tp) coordinates one
    /// stage earlier and one stage later, `None` at the pipeline ends.
    pub fn pp_neighbors(&self, rank: usize) -> (Option<usize>, Option<usize>) {
        let (d, p, t) = self.coords_of(rank);
        let prev = (p > 0).then(|| self.rank_of(d, p - 1, t));
        let next = (p + 1 < self.pp).then(|| self.rank_of(d, p + 1, t));
        (prev, next)
    }

    /// The SPMD symmetry class of `rank`. Under the homogeneous layout the
    /// lowered per-rank program depends only on the pipeline stage: dp peers
    /// run identical ZeRO shards of the same stage and tp peers run
    /// identical slices of the same layers, while different stages hold
    /// different layers and different pipeline-boundary roles. The class is
    /// therefore the pp coordinate.
    pub fn symmetry_class(&self, rank: usize) -> usize {
        self.coords_of(rank).1
    }

    /// Ranks per symmetry class (`dp × tp`).
    pub fn class_size(&self) -> usize {
        self.dp * self.tp
    }

    /// One representative rank per symmetry class: the dp=0 / tp=0 pipeline
    /// column, in stage order. Every cross-class interaction (the pp
    /// boundary handshakes) happens inside one such column, so verifying
    /// the column plus per-class trace equality covers the whole mesh.
    pub fn representative_column(&self) -> Vec<usize> {
        (0..self.pp).map(|p| self.rank_of(0, p, 0)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LinkClass;

    fn mesh(servers: usize, dp: usize, pp: usize, tp: usize) -> DeviceMesh {
        DeviceMesh::new(ClusterSpec::a100_tencent(servers), dp, pp, tp).unwrap()
    }

    #[test]
    fn resized_preserves_model_parallel_axes() {
        let m = mesh(4, 4, 2, 4); // 32 GPUs
        let shrunk = m.resized(2).unwrap(); // 16 GPUs
        assert_eq!((shrunk.dp(), shrunk.pp(), shrunk.tp()), (2, 2, 4));
        assert_eq!(shrunk.cluster().num_servers, 2);
        let grown = m.resized(8).unwrap(); // 64 GPUs
        assert_eq!((grown.dp(), grown.pp(), grown.tp()), (8, 2, 4));
        // A fleet the model-parallel block does not divide is rejected.
        let m = mesh(4, 2, 2, 8); // tp*pp = 16
        assert!(matches!(
            m.resized(3), // 24 GPUs: 24/16 = 1 → 1*2*8 ≠ 24
            Err(MeshError::SizeMismatch { .. })
        ));
    }

    #[test]
    fn validation_rejects_bad_factorizations() {
        let cluster = ClusterSpec::a100_tencent(2); // 16 GPUs
        assert!(matches!(
            DeviceMesh::new(cluster.clone(), 4, 1, 2),
            Err(MeshError::SizeMismatch { total_gpus: 16, .. })
        ));
        // tp = 16 exceeds one server's 8 GPUs.
        assert!(matches!(
            DeviceMesh::new(cluster.clone(), 1, 1, 16),
            Err(MeshError::TpSpansServers {
                gpus_per_server: 8,
                ..
            })
        ));
        // tp = 3 does not divide 8.
        assert!(matches!(
            DeviceMesh::new(
                ClusterSpec::a100_tencent(3), // 24 GPUs
                8,
                1,
                3
            ),
            Err(MeshError::TpSpansServers { .. })
        ));
        assert!(matches!(
            DeviceMesh::new(cluster, 0, 1, 1),
            Err(MeshError::ZeroAxis)
        ));
    }

    #[test]
    fn tp_innermost_rank_layout() {
        let m = mesh(2, 2, 2, 4); // 16 GPUs = 2dp × 2pp × 4tp
        assert_eq!(m.rank_of(0, 0, 0), 0);
        assert_eq!(m.rank_of(0, 0, 3), 3);
        assert_eq!(m.rank_of(0, 1, 0), 4);
        assert_eq!(m.rank_of(1, 0, 0), 8);
        for r in 0..16 {
            let (d, p, t) = m.coords_of(r);
            assert_eq!(m.rank_of(d, p, t), r, "rank {r} round-trips");
        }
    }

    #[test]
    fn placement_fills_servers_in_order() {
        let m = mesh(2, 2, 2, 4);
        assert_eq!(m.placement(0), MeshCoord { server: 0, gpu: 0 });
        assert_eq!(m.placement(7), MeshCoord { server: 0, gpu: 7 });
        assert_eq!(m.placement(8), MeshCoord { server: 1, gpu: 0 });
        assert_eq!(m.placement(15), MeshCoord { server: 1, gpu: 7 });
    }

    #[test]
    fn tp_groups_stay_inside_a_server() {
        // Any valid mesh: every tp group's ranks land on one server.
        for (servers, dp, pp, tp) in [(2, 2, 2, 4), (4, 16, 1, 2), (1, 1, 1, 8), (16, 16, 1, 8)] {
            let m = mesh(servers, dp, pp, tp);
            for rank in 0..m.num_ranks() {
                let servers_touched: std::collections::BTreeSet<usize> = m
                    .group_ranks(MeshAxis::Tp, rank)
                    .into_iter()
                    .map(|r| m.placement(r).server)
                    .collect();
                assert_eq!(servers_touched.len(), 1, "tp group of rank {rank}");
            }
            assert_eq!(m.axis_link(MeshAxis::Tp).class, LinkClass::NvLink);
        }
    }

    #[test]
    fn dp_groups_cross_servers_when_model_parallelism_fills_one() {
        // tp × pp = 8 fills a server, so every dp peer is on another server.
        let m = mesh(4, 4, 4, 2);
        assert_eq!(m.colocated_per_server(MeshAxis::Dp), 1);
        assert_eq!(m.group_servers(MeshAxis::Dp), 4);
        assert_eq!(m.axis_link(MeshAxis::Dp).class, LinkClass::Nic);
        let group = m.group_ranks(MeshAxis::Dp, 0);
        assert_eq!(group, vec![0, 8, 16, 24]);
        let servers: Vec<usize> = group.iter().map(|&r| m.placement(r).server).collect();
        assert_eq!(servers, vec![0, 1, 2, 3]);
    }

    #[test]
    fn pure_data_parallel_matches_the_cluster() {
        let m = DeviceMesh::data_parallel(ClusterSpec::a100_tencent(4));
        assert_eq!(m.dp(), 32);
        assert_eq!((m.pp(), m.tp()), (1, 1));
        // 8 dp peers share each server; the group spans 4 servers → NIC.
        assert_eq!(m.colocated_per_server(MeshAxis::Dp), 8);
        assert_eq!(m.group_servers(MeshAxis::Dp), 4);
        assert_eq!(m.axis_link(MeshAxis::Dp).class, LinkClass::Nic);
        // On one server the same mesh rides NVLink end to end.
        let single = DeviceMesh::data_parallel(ClusterSpec::single_a100());
        assert_eq!(single.axis_link(MeshAxis::Dp).class, LinkClass::NvLink);
    }

    #[test]
    fn group_members_agree_across_the_group() {
        let m = mesh(2, 4, 2, 2);
        let g0 = m.group_ranks(MeshAxis::Dp, 0);
        for &r in &g0 {
            assert_eq!(m.group_ranks(MeshAxis::Dp, r), g0, "rank {r}");
        }
    }

    #[test]
    fn group_index_and_members_invert_each_other() {
        let m = mesh(4, 4, 2, 4);
        for axis in [MeshAxis::Dp, MeshAxis::Pp, MeshAxis::Tp] {
            // Every rank appears in exactly the group its index names, and
            // the enumerated members agree with the membership-by-rank view.
            let mut seen = vec![0usize; m.num_ranks()];
            for g in 0..m.num_groups(axis) {
                let members = m.group_members(axis, g);
                assert_eq!(members.len(), m.axis_size(axis));
                for &r in &members {
                    assert_eq!(m.group_index(axis, r), g, "{axis:?} rank {r}");
                    assert_eq!(m.group_ranks(axis, r), members);
                    seen[r] += 1;
                }
            }
            assert!(seen.iter().all(|&c| c == 1), "{axis:?} partitions ranks");
        }
    }

    #[test]
    fn pp_neighbors_walk_the_pipeline() {
        let m = mesh(4, 4, 4, 2);
        for r in 0..m.num_ranks() {
            let (d, p, t) = m.coords_of(r);
            let (prev, next) = m.pp_neighbors(r);
            assert_eq!(prev.is_none(), p == 0);
            assert_eq!(next.is_none(), p + 1 == m.pp());
            if let Some(prev) = prev {
                assert_eq!(m.coords_of(prev), (d, p - 1, t));
                // Symmetric: my upstream's downstream is me.
                assert_eq!(m.pp_neighbors(prev).1, Some(r));
            }
            if let Some(next) = next {
                assert_eq!(m.coords_of(next), (d, p + 1, t));
            }
        }
    }

    #[test]
    fn symmetry_classes_are_pipeline_stages() {
        let m = mesh(4, 4, 2, 4);
        // dp and tp groups stay within one class; only pp crosses them.
        for r in 0..m.num_ranks() {
            assert_eq!(m.symmetry_class(r), m.coords_of(r).1);
            for axis in [MeshAxis::Dp, MeshAxis::Tp] {
                for &peer in &m.group_ranks(axis, r) {
                    assert_eq!(m.symmetry_class(peer), m.symmetry_class(r));
                }
            }
        }
        assert_eq!(m.class_size(), 16);
        // One representative per class, in stage order, chained by
        // pp_neighbors — the column the reduced SPMD verifier walks.
        let col = m.representative_column();
        assert_eq!(col.len(), m.pp());
        for (s, &r) in col.iter().enumerate() {
            assert_eq!(m.symmetry_class(r), s);
        }
        for w in col.windows(2) {
            assert_eq!(m.pp_neighbors(w[0]).1, Some(w[1]));
        }
    }
}
