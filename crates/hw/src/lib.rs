//! Hardware description substrate for the Angel-PTM reproduction.
//!
//! Angel-PTM (VLDB 2023) was evaluated on Tencent's production A100 servers
//! (Table 3 of the paper): 8 × NVIDIA A100-40GB per server, 4 × AMD EPYC 7K62,
//! 1 TiB DDR4, an 11 TB NVMe SSD array, NVLink 3.0 inside the server and
//! 16 × 12.5 GB/s RoCE NICs between servers. This crate captures that hardware
//! as *data* — devices, links and topologies with capacities, bandwidths and
//! latencies — so that the rest of the system (allocator, scheduler,
//! discrete-event executor) can be written against a hardware model instead of
//! real CUDA devices, which are unavailable in this environment.
//!
//! Everything here is a plain description; the discrete-event semantics live
//! in the `angel-sim` crate.
//!
//! # Example
//!
//! ```
//! use angel_hw::{ServerSpec, DeviceKind};
//!
//! let server = ServerSpec::a100_tencent();
//! assert_eq!(server.gpus.len(), 8);
//! assert_eq!(server.gpu(0).capacity, 40 * angel_hw::GIB);
//! // PCIe host<->device bandwidth from the paper: 32 GB/s.
//! assert_eq!(server.pcie.bandwidth, 32_000_000_000);
//! ```

// Unit tests keep panicking assertions; library code is covered by the
// workspace-wide unwrap/expect ban (clippy.toml disallowed-methods).
#![cfg_attr(test, allow(clippy::disallowed_methods))]

pub mod device;
pub mod link;
pub mod mesh;
pub mod topology;

pub use device::{Device, DeviceId, DeviceKind};
pub use link::{Link, LinkClass};
pub use mesh::{DeviceMesh, MeshAxis, MeshCoord, MeshError};
pub use topology::{ClusterSpec, ServerSpec};

/// One kibibyte (2^10 bytes).
pub const KIB: u64 = 1024;
/// One mebibyte (2^20 bytes).
pub const MIB: u64 = 1024 * KIB;
/// One gibibyte (2^30 bytes).
pub const GIB: u64 = 1024 * MIB;
/// One tebibyte (2^40 bytes).
pub const TIB: u64 = 1024 * GIB;

/// Bandwidths in the paper are quoted in decimal GB/s (e.g. "PCIe 32GB/s",
/// "SSD peak 3.5GB/s"); this constant converts those figures to bytes/second.
pub const GB_PER_S: u64 = 1_000_000_000;

/// Format a byte count with a binary-unit suffix for reports and logs.
///
/// ```
/// assert_eq!(angel_hw::fmt_bytes(4 * angel_hw::MIB), "4.00 MiB");
/// assert_eq!(angel_hw::fmt_bytes(1536), "1.50 KiB");
/// ```
pub fn fmt_bytes(bytes: u64) -> String {
    let b = bytes as f64;
    if bytes >= TIB {
        format!("{:.2} TiB", b / TIB as f64)
    } else if bytes >= GIB {
        format!("{:.2} GiB", b / GIB as f64)
    } else if bytes >= MIB {
        format!("{:.2} MiB", b / MIB as f64)
    } else if bytes >= KIB {
        format!("{:.2} KiB", b / KIB as f64)
    } else {
        format!("{bytes} B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_constants_are_consistent() {
        assert_eq!(MIB, 1 << 20);
        assert_eq!(GIB, 1 << 30);
        assert_eq!(TIB, 1 << 40);
        assert_eq!(GB_PER_S, 10u64.pow(9));
    }

    #[test]
    fn fmt_bytes_covers_all_ranges() {
        assert_eq!(fmt_bytes(512), "512 B");
        assert_eq!(fmt_bytes(2 * KIB), "2.00 KiB");
        assert_eq!(fmt_bytes(3 * MIB), "3.00 MiB");
        assert_eq!(fmt_bytes(40 * GIB), "40.00 GiB");
        assert_eq!(fmt_bytes(11 * TIB), "11.00 TiB");
    }
}
