//! Devices: GPUs, CPUs (host memory domains) and SSDs.
//!
//! The paper's Page abstraction (Figure 3) encodes device placement as a small
//! integer: `device_map: {0: GPU, 1: CPU, 2: SSD}`. [`DeviceKind`] mirrors that
//! mapping, and [`DeviceId`] extends it with an index so a server with eight
//! GPUs can address each one.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The three tiers of the hierarchical memory in Angel-PTM.
///
/// Ordering is by distance from the compute units: `Gpu < Cpu < Ssd`, matching
/// the paper's `device_map: {0: GPU, 1: CPU, 2: SSD}` comment in Figure 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum DeviceKind {
    /// GPU HBM — fastest (600 GB/s on the paper's A100s), smallest (40 GiB).
    Gpu,
    /// Host DDR4 memory — reached over PCIe at 32 GB/s.
    Cpu,
    /// NVMe SSD storage — largest (11 TB) but slowest (3.5 GB/s).
    Ssd,
}

impl DeviceKind {
    /// The integer code used by the paper's `device_map`.
    pub fn code(self) -> usize {
        match self {
            DeviceKind::Gpu => 0,
            DeviceKind::Cpu => 1,
            DeviceKind::Ssd => 2,
        }
    }

    /// Inverse of [`DeviceKind::code`].
    pub fn from_code(code: usize) -> Option<Self> {
        match code {
            0 => Some(DeviceKind::Gpu),
            1 => Some(DeviceKind::Cpu),
            2 => Some(DeviceKind::Ssd),
            _ => None,
        }
    }

    /// All kinds, ordered fastest to slowest.
    pub fn all() -> [DeviceKind; 3] {
        [DeviceKind::Gpu, DeviceKind::Cpu, DeviceKind::Ssd]
    }
}

impl fmt::Display for DeviceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeviceKind::Gpu => write!(f, "GPU"),
            DeviceKind::Cpu => write!(f, "CPU"),
            DeviceKind::Ssd => write!(f, "SSD"),
        }
    }
}

/// A device address: tier plus index within that tier on one server.
///
/// The host memory domain and the SSD array are each modelled as a single
/// device (`index == 0`); GPUs are indexed 0..n.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct DeviceId {
    pub kind: DeviceKind,
    pub index: usize,
}

impl DeviceId {
    pub const fn new(kind: DeviceKind, index: usize) -> Self {
        Self { kind, index }
    }

    /// The `index`-th GPU on a server.
    pub const fn gpu(index: usize) -> Self {
        Self::new(DeviceKind::Gpu, index)
    }

    /// The host memory domain.
    pub const CPU: DeviceId = Self::new(DeviceKind::Cpu, 0);

    /// The SSD array.
    pub const SSD: DeviceId = Self::new(DeviceKind::Ssd, 0);

    pub fn is_gpu(self) -> bool {
        self.kind == DeviceKind::Gpu
    }
}

impl fmt::Display for DeviceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            DeviceKind::Gpu => write!(f, "GPU{}", self.index),
            DeviceKind::Cpu => write!(f, "CPU"),
            DeviceKind::Ssd => write!(f, "SSD"),
        }
    }
}

/// Static description of one device: what it is, how much it holds and how
/// fast its local memory is.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Device {
    pub id: DeviceId,
    /// Usable capacity in bytes.
    pub capacity: u64,
    /// Local memory bandwidth in bytes/second (HBM for GPUs, DDR for CPU,
    /// internal flash bandwidth for SSD).
    pub bandwidth: u64,
}

impl Device {
    pub fn new(id: DeviceId, capacity: u64, bandwidth: u64) -> Self {
        Self {
            id,
            capacity,
            bandwidth,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn device_map_codes_match_figure3() {
        assert_eq!(DeviceKind::Gpu.code(), 0);
        assert_eq!(DeviceKind::Cpu.code(), 1);
        assert_eq!(DeviceKind::Ssd.code(), 2);
        for kind in DeviceKind::all() {
            assert_eq!(DeviceKind::from_code(kind.code()), Some(kind));
        }
        assert_eq!(DeviceKind::from_code(3), None);
    }

    #[test]
    fn kind_ordering_is_fastest_first() {
        assert!(DeviceKind::Gpu < DeviceKind::Cpu);
        assert!(DeviceKind::Cpu < DeviceKind::Ssd);
    }

    #[test]
    fn device_id_display() {
        assert_eq!(DeviceId::gpu(3).to_string(), "GPU3");
        assert_eq!(DeviceId::CPU.to_string(), "CPU");
        assert_eq!(DeviceId::SSD.to_string(), "SSD");
    }

    #[test]
    fn gpu_predicate() {
        assert!(DeviceId::gpu(0).is_gpu());
        assert!(!DeviceId::CPU.is_gpu());
        assert!(!DeviceId::SSD.is_gpu());
    }
}
