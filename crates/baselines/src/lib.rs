//! Baseline system models for the Angel-PTM reproduction.
//!
//! The paper compares Angel-PTM against the two systems deployed on
//! Tencent's Taiji platform before it — DeepSpeed (ZeRO-3 with
//! Offload/Infinity) and Megatron-LM (hand-tuned hybrid parallelism) — plus
//! PatrickStar's chunk-based memory manager in the related-work discussion.
//! Each baseline here reproduces the *policy* the paper attributes that
//! system's behaviour to, running over the same `angel-sim` hardware model
//! and the same `angel-model` workloads as Angel-PTM's engine, so
//! comparisons isolate policy differences exactly:
//!
//! * [`deepspeed`] — static partitioning of model states into pinned host
//!   memory (ZeRO-Offload) or SSD (ZeRO-Infinity), per-tensor transfer
//!   granularity, just-in-time gathers without lifetime-based advancement;
//! * [`megatron`] — TP×PP×DP hybrid parallelism with exhaustive strategy
//!   search, pipeline-bubble and tensor-parallel communication costs, and
//!   replicated (non-sharded) model states;
//! * [`patrickstar`] — chunk-based memory management, quantifying the
//!   stranded-space overhead Section 4.1 criticizes;
//! * [`calibration`] — every constant that ties a baseline policy to the
//!   paper's observed numbers, each with its provenance.

// Unit tests keep panicking assertions; library code is covered by the
// workspace-wide unwrap/expect ban (clippy.toml disallowed-methods).
#![cfg_attr(test, allow(clippy::disallowed_methods))]

pub mod calibration;
pub mod deepspeed;
pub mod megatron;
pub mod patrickstar;

pub use deepspeed::DeepSpeed;
pub use megatron::{search_best_strategy, MegatronStrategy};
