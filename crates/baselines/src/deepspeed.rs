//! DeepSpeed ZeRO-3 with Offload/Infinity — the static-partitioning policy
//! the paper compares against.
//!
//! Behavioural differences from Angel-PTM, each taken from the paper's
//! analysis and encoded here:
//!
//! 1. **Static partition** (Section 6.2): all FP32 optimizer states and the
//!    pinned FP16 staging copies live in host memory permanently — "even
//!    when the GPU has sufficient memory, these systems still transfer the
//!    entire optimizer states and the update operations to the CPU, causing
//!    unnecessary data movements". Capacity is therefore bounded by pinned
//!    host memory, not by the hierarchical total.
//! 2. **Per-tensor transfer granularity** (Section 3.2/4.1): large-tensor
//!    transfers under-use PCIe ([`calibration::DEEPSPEED_PCIE_EFFICIENCY`])
//!    and the per-tensor allocator fragments GPU memory
//!    ([`calibration::DEEPSPEED_GPU_RESERVED`]).
//! 3. **Just-in-time gathers**: no lifetime-based advancement of
//!    all-gathers; every layer's parameters stream in when the layer runs.
//! 4. **Step-boundary updates**: ZeRO-Offload's CPU Adam runs in
//!    `optimizer.step()` *after* backward completes, then re-uploads the
//!    updated FP16 parameters — all on the iteration's critical path. (Only
//!    the gradient offload overlaps with backward.)
//!
//! ZeRO-Infinity (`ssd = true`) additionally parks optimizer states on the
//! SSD, paying its 3.5 GB/s on every update.

use crate::calibration;
use angel_core::plan::{Lowering, LoweringConfig, ParallelismPlan};
use angel_core::verify::objects;
use angel_hw::ClusterSpec;
use angel_model::{flops, TransformerConfig};
use angel_sim::compute::{CpuUpdateModel, GpuComputeModel};
use angel_sim::Access;
use serde::{Deserialize, Serialize};

/// A DeepSpeed configuration.
#[derive(Debug, Clone)]
pub struct DeepSpeed {
    pub cluster: ClusterSpec,
    pub batch_size: u64,
    /// ZeRO-Infinity: optimizer states on SSD.
    pub ssd: bool,
    pub gpu_compute: GpuComputeModel,
    pub cpu_update: CpuUpdateModel,
}

/// Throughput result mirroring the engine's stats.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeepSpeedStats {
    pub iter_time_ns: u64,
    pub samples_per_sec: f64,
    pub gpu_utilization: f64,
}

impl DeepSpeed {
    pub fn new(cluster: ClusterSpec, batch_size: u64) -> Self {
        Self {
            cluster,
            batch_size,
            ssd: false,
            gpu_compute: GpuComputeModel::a100(),
            cpu_update: CpuUpdateModel::epyc_tencent(),
        }
    }

    pub fn with_ssd(mut self, on: bool) -> Self {
        self.ssd = on;
        self
    }

    fn num_gpus(&self) -> u64 {
        self.cluster.total_gpus() as u64
    }

    /// DeepSpeed expressed as a declarative [`ParallelismPlan`]: the pure
    /// ZeRO-3 fixed point of the mesh abstraction — every GPU on the dp
    /// axis, parameters/gradients/optimizer states all sharded, no model
    /// parallelism. Identical to the engine's default plan; the systems
    /// differ only in *policy* (static partition, just-in-time gathers,
    /// synchronous updates), never in the parallelism factorization.
    pub fn parallelism_plan(&self) -> ParallelismPlan {
        ParallelismPlan::zero3(self.cluster.total_gpus())
    }

    /// Whether `model` fits under the static-partition capacity rule.
    ///
    /// Host side: the *whole* model's states (16 B/param) must fit in pinned
    /// memory across the participating servers. GPU side: the largest
    /// layer's gathered FP16 parameters plus the working set must fit beside
    /// the per-tensor allocator's reserve. ZeRO-Infinity moves the 12 B/param
    /// optimizer slice to SSD, keeping 4 B/param pinned.
    pub fn fits(&self, model: &TransformerConfig) -> bool {
        let params = model.total_params();
        let servers = self.cluster.num_servers as u64;
        let host_per_server = self.cluster.server.cpu.capacity;
        let pinned = (host_per_server as f64 * calibration::DEEPSPEED_PINNED_HOST_FRACTION) as u64;
        let host_need_per_server = if self.ssd {
            // FP16 staging stays pinned; FP32 states go to SSD.
            params * 4 / servers
        } else {
            params * 16 / servers
        };
        if host_need_per_server > pinned {
            return false;
        }
        if self.ssd {
            let ssd_cap = self
                .cluster
                .server
                .ssd
                .as_ref()
                .map(|d| d.capacity)
                .unwrap_or(0);
            if params * 12 / servers > ssd_cap {
                return false;
            }
        }
        // GPU working check: gathered largest layer + activations.
        let layer_params = model.params_per_layer();
        let fp = angel_model::footprint::ModelFootprint::of(model, self.batch_size);
        let ws = fp.layer.acts_total; // recompute keeps one layer's activations
        let ws = (ws as f64 * calibration::DEEPSPEED_ACTIVATION_HEADROOM) as u64;
        let gpu_need = layer_params * 2 * 2 /* double-buffered prefetch */ + ws;
        let gpu_cap = self
            .cluster
            .server
            .gpu(0)
            .capacity
            .saturating_sub(calibration::DEEPSPEED_GPU_RESERVED);
        gpu_need <= gpu_cap
    }

    /// Largest layer count of `base` that fits (Table 5's search).
    pub fn max_layers(&self, base: &TransformerConfig) -> usize {
        let fits = |l: usize| l >= 1 && self.fits(&base.clone().with_layers(l));
        if !fits(1) {
            return 0;
        }
        let mut lo = 1;
        let mut hi = 2;
        while fits(hi) {
            lo = hi;
            hi *= 2;
            if hi > 4096 {
                return lo;
            }
        }
        while hi - lo > 1 {
            let mid = (lo + hi) / 2;
            if fits(mid) {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        lo
    }

    /// Build (without running) the one-iteration task graph.
    ///
    /// Lowered through the same [`Lowering`] primitives as the engine, so
    /// both run on identical simulated hardware and differ only in policy:
    /// every layer's FP16 shard streams over (efficiency-degraded) PCIe in
    /// both passes, gathers are just-in-time, updates are synchronous.
    /// Tasks carry access annotations, so the graph can be statically
    /// verified (`Lowering::verify`) as well as executed.
    pub fn lower_iteration(&self, model: &TransformerConfig) -> Option<Lowering> {
        if !self.fits(model) {
            return None;
        }
        let n_gpus = self.num_gpus();
        let mut lo = Lowering::new(
            &LoweringConfig::new(self.cluster.clone(), n_gpus)
                .with_pcie_efficiency(calibration::DEEPSPEED_PCIE_EFFICIENCY),
        );

        let n = model.layers;
        let layer_p16 = model.params_per_layer() * 2;
        let shard = layer_p16.div_ceil(n_gpus);
        let lf = flops::layer_flops(model, self.batch_size);
        let width = model.d_model as f64;
        let fwd_dur = self
            .gpu_compute
            .time_ns_sized(lf.forward, self.batch_size as f64, width);
        let bwd_dur = self.gpu_compute.time_ns_sized(
            lf.backward + lf.recompute,
            self.batch_size as f64,
            width,
        );
        let gpus_per_server = self.cluster.server.num_gpus() as u64;
        let layer_params = model.params_per_layer().div_ceil(n_gpus);
        let upd_dur = self
            .cpu_update
            .time_ns_sharded(layer_params * 28, gpus_per_server as usize);
        let layer_ssd = layer_params * 12;

        // Known graph size: 2n steps × (fetch + gather + compute), the
        // backward half's reduce-scatter + offload, and per-layer updates
        // (optional SSD read/write + update + param upload).
        lo.reserve_tasks(2 * n * 3 + n * 2 + n * (2 + if self.ssd { 2 } else { 0 }));
        let mut prev_compute: Option<usize> = None;
        let mut grad_offloads: Vec<usize> = Vec::with_capacity(n);
        // Forward then backward; every step re-streams the layer shard from
        // pinned memory (static partition: nothing stays resident).
        let mut steps: Vec<(usize, bool)> = Vec::with_capacity(2 * n);
        steps.extend((0..n).map(|l| (l, true)));
        steps.extend((0..n).rev().map(|l| (l, false)));
        for (s, &(l, is_fwd)) in steps.iter().enumerate() {
            // Just-in-time: prefetch of the next layer starts only once the
            // previous layer's compute is underway (one-deep static
            // pipeline, no lifetime-based advancement).
            let fid = lo.move_in(shard, prev_compute, format!("fetch l{l}"));
            // The fetch streams this rank's persistent shard into a fresh
            // per-step staging buffer; the gather fills it from the peers.
            lo.annotate(
                fid,
                [
                    Access::read(objects::layer_params(l)),
                    Access::alloc(objects::gathered(s)),
                ],
            );
            let gid = lo.all_gather(layer_p16, [fid], format!("gather l{l}"));
            lo.annotate(gid, [Access::write(objects::gathered(s))]);
            let dur = if is_fwd { fwd_dur } else { bwd_dur };
            let cid = lo.compute_gpu(dur, [gid], format!("compute l{l}"));
            let mut accesses = vec![
                Access::read(objects::gathered(s)),
                Access::free(objects::gathered(s)),
            ];
            if !is_fwd {
                accesses.push(Access::alloc(objects::layer_grads(l)));
            }
            lo.annotate(cid, accesses);
            if !is_fwd {
                let rs = lo.reduce_scatter(layer_p16, [cid], format!("rs l{l}"));
                lo.annotate(
                    rs,
                    [
                        Access::free(objects::layer_grads(l)),
                        Access::alloc(objects::grad_shard(l)),
                    ],
                );
                let off = lo.offload(shard, [rs], format!("grads l{l}"));
                lo.annotate(off, [Access::read(objects::grad_shard(l))]);
                grad_offloads.push(off);
            }
            prev_compute = Some(cid);
        }

        // optimizer.step(): the CPU Adam phase starts only after the whole
        // backward pass (all gradient offloads) lands, runs layer by layer,
        // and re-uploads the updated FP16 shards — all exposed.
        let mut prev_upd: Option<usize> = None;
        for l in 0..n {
            let mut deps: Vec<usize> = grad_offloads.clone();
            deps.extend(prev_upd);
            let before = if self.ssd {
                let rd = lo.ssd_read(layer_ssd, deps, format!("ssd_rd l{l}"));
                lo.annotate(rd, [Access::read(objects::layer_state(l))]);
                vec![rd]
            } else {
                deps
            };
            let up = lo.update_cpu(upd_dur, before, format!("upd l{l}"));
            // The update consumes the gradient shard and rewrites the FP32
            // master state.
            lo.annotate(
                up,
                [
                    Access::free(objects::grad_shard(l)),
                    Access::write(objects::layer_state(l)),
                ],
            );
            if self.ssd {
                let wr = lo.ssd_write(layer_ssd, [up], format!("ssd_wr l{l}"));
                lo.annotate(wr, [Access::read(objects::layer_state(l))]);
            }
            // Updated FP16 parameter shard returns to the GPU.
            let pu = lo.move_in(shard, [up], format!("param_up l{l}"));
            lo.annotate(pu, [Access::write(objects::layer_params(l))]);
            prev_upd = Some(up);
        }
        Some(lo)
    }

    /// Simulate one iteration and report throughput.
    pub fn iter_stats(&self, model: &TransformerConfig) -> Option<DeepSpeedStats> {
        let lo = self.lower_iteration(model)?;
        let report = lo.run();
        let iter = report.makespan.max(1);
        Some(DeepSpeedStats {
            iter_time_ns: iter,
            samples_per_sec: (self.batch_size * self.num_gpus()) as f64 / (iter as f64 / 1e9),
            gpu_utilization: report.utilization(lo.gpu_id()),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gpt_table5_geometry() -> TransformerConfig {
        // Table 5: "we set the number of heads as 128, the embedding
        // dimension as 8192, and the FFN hidden size as 32768" — the
        // GPT3-28B/55B geometry.
        TransformerConfig::gpt3_28b()
    }

    #[test]
    fn max_gpt_scale_is_about_28b() {
        let ds = DeepSpeed::new(ClusterSpec::single_a100(), 1);
        let layers = ds.max_layers(&gpt_table5_geometry());
        let params = gpt_table5_geometry().with_layers(layers).total_params();
        // The paper: DeepSpeed tops out at 28B on one server.
        assert!(
            params > 25_000_000_000 && params < 32_000_000_000,
            "DeepSpeed max = {layers} layers = {params} params"
        );
    }

    #[test]
    fn infinity_ssd_extends_capacity() {
        let ds = DeepSpeed::new(ClusterSpec::single_a100(), 1);
        let ds_inf = DeepSpeed::new(ClusterSpec::single_a100(), 1).with_ssd(true);
        let base = gpt_table5_geometry();
        assert!(ds_inf.max_layers(&base) > ds.max_layers(&base));
    }

    #[test]
    fn throughput_none_when_oom() {
        let ds = DeepSpeed::new(ClusterSpec::single_a100(), 1);
        let big = gpt_table5_geometry().with_layers(200); // ~160B
        assert!(ds.iter_stats(&big).is_none());
    }

    #[test]
    fn throughput_reported_for_fitting_model() {
        let ds = DeepSpeed::new(ClusterSpec::single_a100(), 4);
        let m = TransformerConfig::gpt3_1_7b();
        let s = ds.iter_stats(&m).expect("1.7B fits");
        assert!(s.samples_per_sec > 0.0);
        assert!(s.gpu_utilization > 0.0 && s.gpu_utilization <= 1.0);
    }

    #[test]
    fn deepspeed_is_the_zero3_fixed_point() {
        use angel_core::plan::ZeroStage;
        let cluster = ClusterSpec::a100_tencent(4);
        let ds = DeepSpeed::new(cluster.clone(), 2);
        let plan = ds.parallelism_plan();
        assert_eq!(plan, ParallelismPlan::zero3(32));
        assert_eq!(plan.zero_stage, ZeroStage::Full);
        assert_eq!(plan.param_shard_ranks(), 32);
        assert!(plan.gathers_params());
        let mesh = plan.validate(&cluster).unwrap();
        assert_eq!((mesh.dp(), mesh.tp(), mesh.pp()), (32, 1, 1));
    }

    #[test]
    fn more_gpus_more_throughput() {
        let m = TransformerConfig::gpt3_13b();
        let s8 = DeepSpeed::new(ClusterSpec::a100_tencent(1), 2)
            .iter_stats(&m)
            .unwrap();
        let s32 = DeepSpeed::new(ClusterSpec::a100_tencent(4), 2)
            .iter_stats(&m)
            .unwrap();
        assert!(s32.samples_per_sec > s8.samples_per_sec);
    }
}
