//! PatrickStar's chunk-based memory management, as characterized by the
//! paper: "PatrickStar manages GPU memory in chunks rather than tensors,
//! where the chunk size must be larger than the largest tensor used in model
//! training. This would also result in memory fragments within each chunk as
//! well as the inefficiency of the overlapping between communication and
//! computation."
//!
//! This module quantifies both costs on real model inventories, feeding the
//! `motivation_fragmentation` experiment:
//!
//! * stranded-space overhead of chunking vs. Angel-PTM's 4 MiB pages, via
//!   the shared [`angel_memsim`] allocator machinery;
//! * transfer granularity: a chunk (≥ largest tensor, i.e. gigabytes for
//!   GPT-3-scale models — Table 2 tops at 3 GB) cannot start computing until
//!   fully transferred, while pages stream.

use angel_memsim::{AddressAllocator, ChunkAllocator};
use angel_model::{model_inventory, TensorClass, TransformerConfig};
use serde::{Deserialize, Serialize};

/// Result of replaying a model's state tensors through a chunk allocator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChunkReport {
    /// Smallest legal chunk size: the largest model-state tensor.
    pub chunk_size: u64,
    /// Bytes of model states placed.
    pub tensor_bytes: u64,
    /// Bytes of chunk capacity consumed (tensor bytes + stranded tails).
    pub reserved_bytes: u64,
    /// Fraction of reserved space wasted.
    pub overhead: f64,
}

/// Place every model-state tensor of `model` (at batch `b`) into chunks of
/// the minimum legal size and measure the stranded space.
pub fn chunk_overhead(model: &TransformerConfig, b: u64) -> ChunkReport {
    let states: Vec<u64> = model_inventory(model, b)
        .into_iter()
        .filter(|t| t.class != TensorClass::Activation)
        .map(|t| t.bytes)
        .collect();
    // A transformer's inventory always has model-state tensors; guard the
    // degenerate case anyway rather than panic.
    let chunk_size = states.iter().copied().max().unwrap_or(1);
    let total: u64 = states.iter().sum();
    // Generous capacity so placement never fails; we measure how many whole
    // chunks the packing touches — a chunk's unreachable tail is stranded
    // the moment a tensor opens the next chunk.
    let mut alloc = ChunkAllocator::new(total * 3, chunk_size);
    let mut chunks_touched = std::collections::BTreeSet::new();
    for &bytes in &states {
        let Ok(a) = alloc.allocate(bytes) else {
            // Capacity is 3x the tensor bytes and no chunk is smaller than
            // the largest tensor, so placement cannot fail.
            unreachable!("chunk placement failed with generous capacity");
        };
        chunks_touched.insert(a.offset / chunk_size);
        // Tensors spanning to the chunk edge stay within one chunk by
        // construction (ChunkAllocator never splits an allocation).
    }
    let reserved = chunks_touched.len() as u64 * chunk_size;
    ChunkReport {
        chunk_size,
        tensor_bytes: total,
        reserved_bytes: reserved,
        overhead: 1.0 - total as f64 / reserved as f64,
    }
}

/// The transfer-granularity cost: time before the *first* byte of a layer
/// can start computing, chunk vs. page, over a link of `bandwidth` bytes/s.
/// A chunk must land entirely; a page pipeline needs only one page.
pub fn first_compute_latency_ns(granule_bytes: u64, bandwidth: u64) -> u64 {
    angel_hw::link::bytes_over_bandwidth_ns(granule_bytes, bandwidth)
}

#[cfg(test)]
mod tests {
    use super::*;
    use angel_hw::{GB_PER_S, MIB};

    #[test]
    fn chunk_size_is_largest_tensor() {
        // For the GPT-3 geometry of Table 2 the largest model-state tensor
        // is an FFN optimizer state of 2304 MB.
        let m = TransformerConfig::gpt3_175b_openai().with_layers(2);
        let r = chunk_overhead(&m, 16);
        assert_eq!(r.chunk_size, 2304 * MIB);
    }

    #[test]
    fn chunking_strands_space() {
        let m = TransformerConfig::gpt3_175b_openai().with_layers(4);
        let r = chunk_overhead(&m, 16);
        assert!(r.overhead > 0.0, "chunk tails must strand space");
        assert!(r.reserved_bytes > r.tensor_bytes);
    }

    #[test]
    fn pages_start_compute_675x_sooner() {
        // 2304 MB chunk vs 4 MiB page over PCIe: the page pipeline's first
        // compute can start ~576× earlier.
        let chunk = first_compute_latency_ns(2304 * MIB, 32 * GB_PER_S);
        let page = first_compute_latency_ns(4 * MIB, 32 * GB_PER_S);
        assert!(chunk > 500 * page, "chunk {chunk} vs page {page}");
    }
}
