//! Megatron-LM hybrid parallelism: tensor × pipeline × data, with the
//! hand-tuned strategy search the paper performed for its baseline ("we
//! manually search the best parallelism strategy for each experimented
//! model").
//!
//! Megatron replicates (never shards) model states across data-parallel
//! groups, so its capacity is bounded by `states / (tp·pp) ≤ GPU memory` —
//! the reason it "fails with the out-of-memory error" at 30B on 8 GPUs in
//! Figure 7 while the ZeRO systems continue.

use crate::calibration;
use angel_core::plan::{Lowering, LoweringConfig, ParallelismPlan};
use angel_core::verify::objects;
use angel_hw::ClusterSpec;
use angel_model::{flops, footprint::ModelFootprint, TransformerConfig};
use angel_sim::collectives::{collective_time_ns, hierarchical_collective_time_ns, Collective};
use angel_sim::compute::GpuComputeModel;
use angel_sim::Access;
use serde::{Deserialize, Serialize};

/// One point in the strategy space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MegatronStrategy {
    pub tp: usize,
    pub pp: usize,
    pub dp: usize,
    /// Micro-batch size per model replica.
    pub micro_batch: u64,
    /// Number of micro-batches per iteration (pipeline depth fill).
    pub num_micro_batches: u64,
}

impl MegatronStrategy {
    /// This strategy expressed as a declarative [`ParallelismPlan`]:
    /// Megatron-LM is the `ZeroStage::None` fixed point of the mesh
    /// abstraction — tp×pp model parallelism with fully replicated model
    /// states across the dp groups (the replication that OOMs at 30B on
    /// 8 GPUs in Figure 7 while the ZeRO systems continue).
    pub fn parallelism_plan(&self) -> ParallelismPlan {
        ParallelismPlan::megatron(self.dp, self.tp, self.pp)
    }
}

/// Evaluated strategy with predicted throughput.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StrategyEval {
    pub strategy: MegatronStrategy,
    pub iter_time_ns: u64,
    pub samples_per_sec: f64,
    /// 1F1B pipeline bubble fraction `(p−1)/(m+p−1)`.
    pub bubble_fraction: f64,
}

/// Per-GPU memory demand of a strategy (model states replicated across DP).
fn gpu_bytes_needed(model: &TransformerConfig, s: &MegatronStrategy, cluster: &ClusterSpec) -> u64 {
    let _ = cluster;
    let states = model.model_state_bytes(); // 16 B/param
    let states_per_gpu = states / (s.tp as u64 * s.pp as u64);
    // Activations with full recomputation (Megatron-LM's
    // --recompute-activations, on in all our comparisons just as in
    // Angel-PTM): only one layer's activations are live per in-flight
    // micro-batch, plus the stage-boundary stash per in-flight micro-batch.
    // 1F1B keeps up to `pp` micro-batches in flight at the first stage.
    let fp = ModelFootprint::of(model, s.micro_batch);
    let acts_per_layer = fp.layer.acts_total / s.tp as u64;
    let boundary = 2 * s.micro_batch * model.seq_len as u64 * model.d_model as u64;
    let layers_per_stage = (model.layers as u64).div_ceil(s.pp as u64);
    let in_flight = (s.pp as u64).min(s.num_micro_batches);
    let acts = (acts_per_layer + boundary * layers_per_stage) * in_flight;
    states_per_gpu + acts
}

/// Build (without running) the first pipeline stage's one-iteration task
/// graph for one strategy; `None` when it does not fit in GPU memory.
///
/// Lowered through the shared [`Lowering`] primitives: the critical path of
/// the first stage is `m + p − 1` back-to-back micro-batch slots on its GPU
/// stream — the steady-state 1F1B schedule — followed by the exposed slice
/// of the data-parallel gradient all-reduce. Tasks carry access annotations
/// (every slot touches the stage's *replicated* model state — Megatron
/// never shards it), so the graph can be statically verified as well as
/// executed.
pub fn lower_strategy(
    model: &TransformerConfig,
    s: MegatronStrategy,
    cluster: &ClusterSpec,
    gpu_model: &GpuComputeModel,
) -> Option<Lowering> {
    let gpu_cap = cluster.server.gpu(0).capacity.saturating_sub(2 * (1 << 30));
    if gpu_bytes_needed(model, &s, cluster) > gpu_cap {
        return None;
    }
    let n = model.layers as u64;
    let lf = flops::layer_flops(model, s.micro_batch);
    // Per-micro-batch compute of one stage (layers/pp), split over TP.
    let layers_per_stage = n.div_ceil(s.pp as u64);
    // Recomputation replays the forward during backward.
    let stage_flops = layers_per_stage * (lf.forward + lf.backward + lf.recompute) / s.tp as u64;
    // TP shrinks every matmul's per-GPU weight slice by `tp`; the shared
    // tile-work efficiency model (see `GpuComputeModel::effective_batch`)
    // charges narrow slices and rewards wide ones uniformly across systems —
    // which is exactly why pure data parallelism wins for the 1.7B model
    // (d = 2304) in Figure 7 while TP×PP stays viable for d = 8192 models.
    let slice = model.d_model as f64 / s.tp as f64;
    let stage_time = gpu_model.time_ns_sized(stage_flops, s.micro_batch as f64, slice);
    // TP all-reduces: 2 per layer per pass (4 total), volume b·s·d FP16,
    // on NVLink (TP groups stay inside a server).
    let tp_volume = s.micro_batch * model.seq_len as u64 * model.d_model as u64 * 2;
    let tp_time = if s.tp > 1 {
        4 * layers_per_stage
            * collective_time_ns(
                Collective::AllReduce,
                tp_volume,
                s.tp as u64,
                &cluster.server.nvlink,
            )
    } else {
        0
    };
    let pp_overhead = if s.pp > 1 {
        (stage_time as f64 * calibration::MEGATRON_PP_OVERHEAD) as u64
    } else {
        0
    };
    let per_micro = stage_time + tp_time + pp_overhead;
    let m = s.num_micro_batches;
    let p = s.pp as u64;
    // DP gradient all-reduce (full replica gradients / (tp·pp)), partially
    // overlapped with backward.
    let grad_bytes = model.total_params() * 2 / (s.tp as u64 * s.pp as u64);
    let dp_time = if s.dp > 1 {
        (hierarchical_collective_time_ns(Collective::AllReduce, grad_bytes, cluster, s.dp as u64)
            as f64
            * calibration::MEGATRON_DP_EXPOSED) as u64
    } else {
        0
    };
    let mut lo = Lowering::new(&LoweringConfig::new(cluster.clone(), s.dp as u64));
    lo.reserve_tasks((m + p - 1) as usize + 1);
    let mut prev: Option<usize> = None;
    for slot in 0..(m + p - 1) {
        let cid = lo.compute_gpu(per_micro, prev, format!("micro slot {slot}"));
        // Every slot reads and updates the stage's replicated model state
        // (parameters and accumulated gradients live in place).
        lo.annotate(cid, [Access::write(objects::replica(0))]);
        prev = Some(cid);
    }
    if dp_time > 0 {
        let dpid = lo.collective_exposed(dp_time, prev, "dp all_reduce (exposed)");
        // The gradient all-reduce reads the replica's accumulated grads.
        lo.annotate(dpid, [Access::read(objects::replica(0))]);
    }
    Some(lo)
}

/// Evaluate one strategy; `None` when it does not fit in GPU memory.
pub fn evaluate(
    model: &TransformerConfig,
    s: MegatronStrategy,
    cluster: &ClusterSpec,
    gpu_model: &GpuComputeModel,
) -> Option<StrategyEval> {
    let lo = lower_strategy(model, s, cluster, gpu_model)?;
    let iter = lo.run().makespan;
    let m = s.num_micro_batches;
    let p = s.pp as u64;
    let bubble = (p - 1) as f64 / (m + p - 1) as f64;
    let global_batch = s.micro_batch * m * s.dp as u64;
    Some(StrategyEval {
        strategy: s,
        iter_time_ns: iter.max(1),
        samples_per_sec: global_batch as f64 / (iter.max(1) as f64 / 1e9),
        bubble_fraction: bubble,
    })
}

/// Exhaustive search over (tp, pp, dp, micro-batch) for the best strategy at
/// a per-GPU batch budget of `batch_per_gpu` (global batch fixed at
/// `batch_per_gpu × num_gpus`, like the paper's comparisons).
pub fn search_best_strategy(
    model: &TransformerConfig,
    cluster: &ClusterSpec,
    batch_per_gpu: u64,
) -> Option<StrategyEval> {
    search_best_strategy_global(model, cluster, batch_per_gpu * cluster.total_gpus() as u64)
}

/// Strategy search at a fixed *global* batch — needed when comparing fleets
/// of different sizes on the same workload (the Section 3.1 72-GPU
/// anecdote).
pub fn search_best_strategy_global(
    model: &TransformerConfig,
    cluster: &ClusterSpec,
    global_batch: u64,
) -> Option<StrategyEval> {
    let n_gpus = cluster.total_gpus();
    let gpu_model = GpuComputeModel::a100();
    let mut best: Option<StrategyEval> = None;
    for tp in [1usize, 2, 4, 8] {
        if tp > cluster.server.num_gpus() || !n_gpus.is_multiple_of(tp) {
            continue;
        }
        let rest = n_gpus / tp;
        for pp in 1..=rest {
            if !rest.is_multiple_of(pp) || !model.layers.is_multiple_of(pp) && pp > model.layers {
                continue;
            }
            let dp = rest / pp;
            if !global_batch.is_multiple_of(dp as u64) {
                continue;
            }
            let replica_batch = global_batch / dp as u64;
            // Try micro-batch sizes dividing the replica batch.
            for &mb in &[1u64, 2, 4, 8, 16, 32] {
                if mb > replica_batch || !replica_batch.is_multiple_of(mb) {
                    continue;
                }
                let s = MegatronStrategy {
                    tp,
                    pp,
                    dp,
                    micro_batch: mb,
                    num_micro_batches: replica_batch / mb,
                };
                if let Some(eval) = evaluate(model, s, cluster, &gpu_model) {
                    if best.is_none_or(|b| eval.samples_per_sec > b.samples_per_sec) {
                        best = Some(eval);
                    }
                }
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_model_prefers_pure_data_parallelism() {
        // Figure 7: "the 1.7B model is small enough to be accommodated by a
        // single GPU, and therefore the vanilla data parallelism (without
        // ZeRO) achieves the best performance, which is also the strategy
        // adopted by Megatron-LM."
        let m = TransformerConfig::gpt3_1_7b();
        let best = search_best_strategy(&m, &ClusterSpec::single_a100(), 4).unwrap();
        assert_eq!(best.strategy.tp, 1);
        assert_eq!(best.strategy.pp, 1);
        assert_eq!(best.strategy.dp, 8);
        assert_eq!(best.bubble_fraction, 0.0);
    }

    #[test]
    fn gpt_30b_ooms_on_8_gpus() {
        // Figure 7 (1×8): "as the model size increased to 30B, Megatron-LM
        // fails with the out-of-memory error".
        let m = TransformerConfig::gpt3_30b();
        assert!(search_best_strategy(&m, &ClusterSpec::single_a100(), 1).is_none());
    }

    #[test]
    fn gpt_30b_fits_on_32_gpus() {
        // Figure 7 (4×8): "with more GPUs, Megatron-LM is able to support
        // the 30B model".
        let m = TransformerConfig::gpt3_30b();
        let best = search_best_strategy(&m, &ClusterSpec::a100_tencent(4), 1);
        assert!(best.is_some());
        let b = best.unwrap();
        assert!(
            b.strategy.tp * b.strategy.pp > 1,
            "must use model parallelism"
        );
    }

    #[test]
    fn gpt_120b_ooms_even_on_32_gpus() {
        // Figure 7 (4×8) shows only DeepSpeed and Angel-PTM at 120B.
        let m = TransformerConfig::gpt3_120b();
        assert!(search_best_strategy(&m, &ClusterSpec::a100_tencent(4), 1).is_none());
    }

    #[test]
    fn bubble_fraction_formula() {
        let m = TransformerConfig::gpt3_13b();
        let cluster = ClusterSpec::a100_tencent(4);
        let s = MegatronStrategy {
            tp: 8,
            pp: 4,
            dp: 1,
            micro_batch: 1,
            num_micro_batches: 8,
        };
        let e = evaluate(&m, s, &cluster, &GpuComputeModel::a100()).unwrap();
        assert!((e.bubble_fraction - 3.0 / 11.0).abs() < 1e-9);
    }

    #[test]
    fn deeper_pipelines_bubble_more() {
        let m = TransformerConfig::gpt3_1_7b().with_layers(32);
        let cluster = ClusterSpec::a100_tencent(4);
        let gm = GpuComputeModel::a100();
        let mk = |pp: usize| MegatronStrategy {
            tp: 1,
            pp,
            dp: 1,
            micro_batch: 1,
            num_micro_batches: 8,
        };
        let e2 = evaluate(&m, mk(2), &cluster, &gm).unwrap();
        let e8 = evaluate(&m, mk(8), &cluster, &gm).unwrap();
        assert!(e8.bubble_fraction > e2.bubble_fraction);
    }

    #[test]
    fn best_strategy_is_a_valid_mesh_plan() {
        // The searched strategy is the ZeroStage::None fixed point of the
        // declarative plan: it lays onto the same cluster as a DeviceMesh,
        // with the tp group inside the NVLink domain (the constraint the
        // search space enforces with `tp ≤ gpus/server`) and fully
        // replicated model states.
        use angel_core::plan::ZeroStage;
        let cluster = ClusterSpec::a100_tencent(4);
        let best = search_best_strategy(&TransformerConfig::gpt3_30b(), &cluster, 1).unwrap();
        let plan = best.strategy.parallelism_plan();
        assert_eq!(plan.zero_stage, ZeroStage::None);
        assert_eq!(plan.param_shard_ranks(), 1, "Megatron never shards");
        let mesh = plan
            .validate(&cluster)
            .expect("searched strategy fits the mesh");
        assert_eq!(
            (mesh.dp(), mesh.tp(), mesh.pp()),
            (best.strategy.dp, best.strategy.tp, best.strategy.pp)
        );
        // The mesh prices tp collectives on NVLink — the same wire
        // `lower_strategy`'s flat-rate tp term uses.
        if best.strategy.tp > 1 {
            assert_eq!(
                mesh.axis_link(angel_hw::MeshAxis::Tp).class,
                angel_hw::LinkClass::NvLink
            );
        }
    }

    #[test]
    fn the_72_gpu_anecdote() {
        // Section 3.1: "Training a 64-layer GPT model with the hybrid
        // parallelism strategy of Megatron-LM on 72 GPUs is slower than that
        // on 64 GPUs" — an awkward GPU count forces a worse factorization.
        // Our search space mirrors this: compare best strategies at 64 vs 72
        // GPUs (9 servers) for a 64-layer model at fixed global batch.
        let m = TransformerConfig::gpt3_30b(); // 64 layers
                                               // Same workload (global batch 144) on both fleets.
        let best64 = search_best_strategy_global(&m, &ClusterSpec::a100_tencent(8), 144);
        let best72 = search_best_strategy_global(&m, &ClusterSpec::a100_tencent(9), 144);
        if let (Some(a), Some(b)) = (best64, best72) {
            // Per-GPU efficiency at 72 must not exceed that at 64.
            let eff64 = a.samples_per_sec / 64.0;
            let eff72 = b.samples_per_sec / 72.0;
            assert!(
                eff72 <= eff64 * 1.02,
                "72-GPU factorization should not be more efficient: {eff64} vs {eff72}"
            );
        }
    }
}
