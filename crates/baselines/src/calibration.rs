//! Calibration constants for the baseline policies, with provenance.
//!
//! These are the only tuned numbers in the baseline models. Each is set
//! once, justified against a specific statement or measurement in the paper
//! (or well-known deployment behaviour), and used unchanged by every
//! experiment — see DESIGN.md §4 ("not tuned per experiment").

/// Fraction of host RAM DeepSpeed's offload path can actually use.
///
/// ZeRO-Offload/Infinity keeps FP32 master parameters, both Adam moments and
/// pinned FP16 parameter/gradient staging buffers in *page-locked* host
/// memory (16 bytes/param in total). Page-locked allocations on production
/// hosts are capped well below physical RAM (OS, dataloaders, NCCL bounce
/// buffers, and the kernel's own pinned-memory limits), and DeepSpeed's
/// allocator keeps additional working copies. The paper's observation that
/// DeepSpeed tops out at 28B parameters on a 1 TiB host ("since DeepSpeed
/// statically partitions the model states across GPUs and CPUs, the maximum
/// model scale will be limited by the CPU memory") pins this fraction:
/// 28–30e9 × 16 B ≈ 450–480 GB ≈ 0.44 × 1 TiB (Table 5's 28B ceiling and
/// Figure 7's 30B run on one server jointly pin the range).
pub const DEEPSPEED_PINNED_HOST_FRACTION: f64 = 0.44;

/// Efficiency of DeepSpeed's PCIe prefetching relative to ideal streaming.
///
/// DeepSpeed transfers model states at *tensor* granularity with a static
/// schedule; Section 3.2 observes that for large tensors "there must be
/// enough space in the GPU to start the communication. Prior to this, the
/// communication bandwidth is unused." Tensor-sized transfers (up to 3 GB,
/// Table 2) serialize behind allocation and cannot be advanced by lifetime
/// analysis. We charge this as a flat PCIe-efficiency factor.
pub const DEEPSPEED_PCIE_EFFICIENCY: f64 = 0.60;

/// GPU bytes DeepSpeed reserves outside model states (CUDA context, NCCL,
/// per-tensor allocator fragmentation — the motivation experiment quantifies
/// the latter). Larger than Angel-PTM's 2 GiB page-pool reserve because of
/// the per-tensor allocator's fragments.
pub const DEEPSPEED_GPU_RESERVED: u64 = 4 * (1 << 30);

/// Fraction of each pipeline stage's ideal compute Megatron loses to
/// point-to-point communication and stage imbalance beyond the analytic
/// 1F1B bubble (which is modelled exactly). From the Megatron-LM paper's
/// reported scaling efficiencies.
pub const MEGATRON_PP_OVERHEAD: f64 = 0.05;

/// Activation headroom multiplier for DeepSpeed's per-tensor allocator: the
/// fragmentation measured by the `motivation_fragmentation` experiment
/// (~50% worst-case external fragmentation under the offload trace) means
/// activations need half again their net size in practice, capping
/// DeepSpeed's micro-batch below Angel-PTM's (Table 5: batch 36 vs 38;
/// Figure 7's "can train with larger micro batch sizes").
pub const DEEPSPEED_ACTIVATION_HEADROOM: f64 = 1.5;

/// Per-iteration synchronous data-parallel gradient all-reduce overlap:
/// Megatron overlaps the DP all-reduce with backward; the fraction that
/// remains exposed on the critical path.
pub const MEGATRON_DP_EXPOSED: f64 = 0.30;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn constants_in_sane_ranges() {
        assert!(DEEPSPEED_PINNED_HOST_FRACTION > 0.3 && DEEPSPEED_PINNED_HOST_FRACTION < 0.6);
        assert!(DEEPSPEED_PCIE_EFFICIENCY > 0.3 && DEEPSPEED_PCIE_EFFICIENCY <= 1.0);
        assert!(MEGATRON_PP_OVERHEAD < 0.2);
        assert!(MEGATRON_DP_EXPOSED < 1.0);
    }

    #[test]
    fn pinned_fraction_reproduces_28_to_30b_ceiling() {
        // 0.44 × 1 TiB ÷ 16 B/param ≈ 30.2B params — between Table 5's 28B
        // maximum and Figure 7's 30B single-server run.
        let host = 1u64 << 40;
        let max_params = (host as f64 * DEEPSPEED_PINNED_HOST_FRACTION / 16.0) as u64;
        assert!(max_params > 28_000_000_000 && max_params < 31_000_000_000);
    }
}
