//! Quickstart — the Figure 6 workflow: define a model, initialize the
//! engine, train.
//!
//! ```text
//! cargo run -p angel-examples --bin quickstart
//! ```
//!
//! Mirrors the paper's programming interface:
//!
//! ```python
//! model = angelptm.initialize(model, optimizer, config)
//! for batch in batches:
//!     loss = model(batch); model.backward(loss); model.step()
//! ```

use angel_core::{Engine, EngineConfig};
use angel_hw::fmt_bytes;
use angel_model::TransformerConfig;

fn main() {
    // 1. Define the model — a 13B GPT from the paper's Table 4.
    let model = TransformerConfig::gpt3_13b();
    println!(
        "model: {} — {} layers, d_model {}, {:.1}B parameters, {} of model states",
        model.name,
        model.layers,
        model.d_model,
        model.total_params() as f64 / 1e9,
        fmt_bytes(model.model_state_bytes()),
    );

    // 2. Configure the hardware: one Tencent A100 server (Table 3).
    let config = EngineConfig::single_server().with_batch_size(8);
    println!(
        "cluster: {} GPUs × {}, host pool {}",
        config.num_gpus(),
        fmt_bytes(config.cluster.server.gpu(0).capacity),
        fmt_bytes(config.usable_host_bytes()),
    );

    // 3. angelptm.initialize(): trace → place → schedule → cache.
    let mut engine = Engine::initialize(&model, &config).expect("13B fits on one server");
    let placement = engine.placement();
    println!(
        "placement (per rank): GPU {}, CPU {}, SSD {}",
        fmt_bytes(placement.gpu_bytes),
        fmt_bytes(placement.cpu_bytes),
        fmt_bytes(placement.ssd_bytes),
    );
    let sched = engine.schedule().stats;
    println!(
        "schedule: {} pages GPU-resident, {} CPU-bound, peak {} of {}, {} gathers advanced",
        sched.pages_resident,
        sched.pages_cpu_bound,
        fmt_bytes(sched.peak_gpu_bytes),
        fmt_bytes(config.gpu_budget()),
        sched.gathers_advanced,
    );
    println!(
        "dynamic GPU cache: {} of optimizer states ({:.0}%)",
        fmt_bytes(engine.cache_plan().cache_bytes),
        engine.cache_plan().cached_fraction * 100.0,
    );

    // 4. Train.
    let report = engine.run(10);
    let s = report.per_iter;
    println!(
        "\n10 iterations: {:.2} samples/s | iter {:.0} ms | GPU util {:.0}% | overlap {:.2}",
        s.samples_per_sec,
        s.iter_time_ns as f64 / 1e6,
        s.gpu_utilization * 100.0,
        s.overlap_ratio,
    );
}
