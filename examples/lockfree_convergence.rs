//! Real training with the Lock-Free Updating Mechanism — Algorithm 2 with
//! genuine threads, gradients and Adam math on a small language model.
//!
//! ```text
//! cargo run --release -p angel-examples --bin lockfree_convergence
//! ```
//!
//! Trains the same character-level GPT twice — synchronously and through the
//! lock-free mechanism with an SSD-throttled state store — and prints the
//! loss curves side by side, demonstrating the Table 6 claim that staleness
//! "has little impact to the model quality".

use angel_core::lockfree::ClearPolicy;
use angel_train::generate::{generate, SampleConfig};
use angel_train::{train_lockfree, train_sync, CharCorpus, GptConfig, TinyGpt, TrainConfig};

fn main() {
    let corpus = CharCorpus::generate(16, 60_000, 99);
    let cfg = TrainConfig {
        model: GptConfig::tiny(),
        steps: 800,
        seq_len: 32,
        seed: 3,
        ssd_bytes_per_sec: Some(150_000_000),
        clear_policy: ClearPolicy::TakeAtSnapshot,
        ..Default::default()
    };

    println!("training {:?}", cfg.model);
    println!(
        "corpus: {} train tokens, vocab {}\n",
        corpus.train.len(),
        corpus.vocab
    );

    let sync = train_sync(&cfg, &corpus);
    let lf = train_lockfree(&cfg, &corpus);

    println!("step   sync-loss  lockfree-loss");
    for (i, (a, b)) in sync.loss_curve.iter().zip(&lf.loss_curve).enumerate() {
        println!("{:4}   {a:9.4}  {b:13.4}", i * 20);
    }
    println!(
        "\nvalidation loss: sync {:.4} vs lock-free {:.4}",
        sync.valid_loss, lf.valid_loss
    );
    println!(
        "lock-free ran {} optimizer updates for {} gradient pushes (accumulation under \
         SSD pressure), {} micro-batches dropped",
        lf.updates_applied, lf.grads_pushed, lf.grads_dropped,
    );
    let gap = (lf.valid_loss - sync.valid_loss) / sync.valid_loss * 100.0;
    println!("quality gap: {gap:+.1}% (paper's Table 6: +0.9%)");

    // Qualitative check: sample a continuation from a trained model.
    let model = TinyGpt::new(cfg.model);
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    let params = {
        // quick fresh sync training to get parameters for sampling
        use angel_core::lockfree::LayerState;
        use angel_train::MixedPrecisionAdam;
        let mut st: Vec<LayerState> = model
            .init_params(cfg.seed)
            .into_iter()
            .map(LayerState::new)
            .collect();
        let mut adam = MixedPrecisionAdam::new(cfg.adam, st.len());
        for _ in 0..cfg.steps {
            let (x, y) = corpus.sample(cfg.seq_len, &mut rng);
            let p: Vec<Vec<f32>> = st.iter().map(|s| s.p32.clone()).collect();
            let (_, grads) = model.forward_backward(&p, &x, &y);
            for (l, (state, g)) in st.iter_mut().zip(&grads).enumerate() {
                adam.step(l, state, g, 1);
            }
        }
        st.into_iter().map(|s| s.p32).collect::<Vec<_>>()
    };
    let prompt = &corpus.valid[..8];
    let continuation = generate(
        &model,
        &params,
        prompt,
        SampleConfig {
            temperature: 0.7,
            tokens: 24,
        },
        &mut rng,
    );
    println!("\nsampled continuation of {:?}: {:?}", prompt, continuation);
}
