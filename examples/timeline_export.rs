//! Export one training iteration's simulated timeline as a Chrome trace —
//! computes, page movements, collectives and optimizer updates on separate
//! tracks, making the Unified Scheduler's overlap visible.
//!
//! ```text
//! cargo run -p angel-examples --bin timeline_export
//! # then open chrome://tracing (or https://ui.perfetto.dev) and load
//! # target/angel_iteration_trace.json
//! ```

use angel_core::{Engine, EngineConfig};
use angel_model::TransformerConfig;

fn main() {
    let model = TransformerConfig::gpt3_13b();
    let config = EngineConfig::single_server().with_batch_size(4);
    let engine = Engine::initialize(&model, &config).expect("13B fits on one server");

    let trace = engine.export_chrome_trace();
    let path = "target/angel_iteration_trace.json";
    std::fs::create_dir_all("target").ok();
    std::fs::write(path, &trace).expect("write trace");

    let events = trace.matches("\"ph\": \"X\"").count();
    println!("wrote {path}: {events} events ({} bytes)", trace.len());
    println!("open chrome://tracing or https://ui.perfetto.dev and load the file.");
    println!("tracks: executor:gpu-stream, executor:cpu-stream, pcie-h2d/d2h,");
    println!("        communicator:dp-channel, ssd-channel");
    println!("(mesh configs add communicator:tp-channel / pp-channel tracks)");
}
