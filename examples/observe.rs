//! One-command observability demo: run the engine *and* a real lock-free
//! trainer under a single shared [`Recorder`], then export
//!
//! * `target/angel_observe_trace.json` — the merged Perfetto timeline:
//!   process 1 is the simulated hardware (per-resource task tracks plus
//!   per-domain resident-bytes counter tracks), process 2 is the runtime
//!   (real lock-free updater threads, engine iteration spans, queue-depth /
//!   pending-gradient counter tracks);
//! * `target/angel_observe_metrics.json` — the [`MetricsSnapshot`] with
//!   allocator (`alloc.*`), trainer (`trainer.*`), iteration (`engine.*`)
//!   and simulated-executor (`sim.*`) metrics.
//!
//! ```text
//! cargo run --release -p angel-examples --bin observe
//! # then load target/angel_observe_trace.json in https://ui.perfetto.dev
//! ```

use angel_core::lockfree::{
    ClearPolicy, LayerState, LockFreeTrainer, MemoryStore, RetryPolicy, SgdOptimizer,
};
use angel_core::{Engine, EngineConfig, MetricsSnapshot, Recorder};
use angel_model::TransformerConfig;

fn identity_cast(x: f32) -> f32 {
    x
}

fn main() {
    let recorder = Recorder::enabled();

    // ---- Simulated side: a 13B iteration under the unified scheduler,
    // on a composed mesh plan so the per-group communicator channels
    // (dp / tp / pp) each show up as their own timeline track. -----
    let model = TransformerConfig::gpt3_13b();
    let config = EngineConfig::single_server()
        .with_batch_size(4)
        .with_parallelism(angel_core::plan::ParallelismPlan {
            dp: 2,
            tp: 2,
            pp: 2,
            zero_stage: angel_core::plan::ZeroStage::Full,
        });
    let mut engine = Engine::initialize(&model, &config).expect("13B fits on one server");
    engine.set_recorder(recorder.clone());
    let stats = engine.train_iteration();
    println!(
        "engine: iter {:.1} ms simulated, gpu util {:.1}%, overlap {:.2}",
        stats.iter_time_ns as f64 / 1e6,
        stats.gpu_utilization * 100.0,
        stats.overlap_ratio,
    );

    // ---- Online replanning: an injected outage tightens the budget and
    // splices a replanned schedule at the iteration boundary — the replan
    // span and the `plan.replan_ns` counter land on the engine's runtime
    // track. ---------------------------------------------------------------
    let online = engine
        .run_online(
            2,
            &[angel_core::ClusterEvent::Outage {
                at_iter: 0,
                target: angel_core::plan::FaultTarget::H2d,
                at_ns: 0,
                duration_ns: 1_000_000,
            }],
        )
        .expect("online replanning run completes");
    println!(
        "online: {} splice(s), replan {:.2} ms, {} of {} layers reused",
        online.splices.len(),
        online.splices[0].replan_ns as f64 / 1e6,
        online.splices[0].outcome.layers_reused,
        online.splices[0].outcome.layers_reused + online.splices[0].outcome.layers_touched,
    );

    // ---- Runtime side: Algorithm 2 on real OS threads --------------------
    let layers = 8;
    let initial: Vec<Vec<f32>> = (0..layers).map(|l| vec![l as f32; 4096]).collect();
    let store = MemoryStore::throttled(
        initial.iter().map(|p| LayerState::new(p.clone())).collect(),
        2_000_000_000, // 2 GB/s "SSD"
    );
    let trainer = LockFreeTrainer::spawn_observed(
        initial,
        Box::new(store),
        Box::new(SgdOptimizer { lr: 0.01 }),
        identity_cast,
        ClearPolicy::TakeAtSnapshot,
        RetryPolicy::default(),
        recorder.clone(),
    );
    for i in 0..48 {
        trainer.push_grads(i % layers, vec![0.1; 4096]);
    }
    assert!(trainer.wait_quiescent(), "trainer settles");
    let lf = trainer.stats();
    println!(
        "trainer: {} pushes -> {} optimizer updates ({} grads applied)",
        lf.grads_pushed, lf.updates_applied, lf.grads_applied,
    );

    // ---- Exports ---------------------------------------------------------
    std::fs::create_dir_all("target").ok();

    let trace = engine.export_merged_trace();
    let trace_path = "target/angel_observe_trace.json";
    std::fs::write(trace_path, &trace).expect("write trace");

    let snapshot = recorder.snapshot();
    let metrics = snapshot.to_json_string();
    let metrics_path = "target/angel_observe_metrics.json";
    std::fs::write(metrics_path, &metrics).expect("write metrics");
    // Round-trip through the parser so the file is known-consumable.
    let back = MetricsSnapshot::from_json_str(&metrics).expect("snapshot round-trips");
    assert_eq!(
        back.counters.get("trainer.grads_pushed"),
        Some(&lf.grads_pushed)
    );

    let spans = trace.matches("\"ph\": \"X\"").count();
    let counters = trace.matches("\"ph\": \"C\"").count();
    println!(
        "wrote {trace_path}: {spans} span events, {counters} counter samples, \
         {} ring events ({} dropped)",
        recorder.events().len(),
        recorder.events_dropped(),
    );
    println!(
        "wrote {metrics_path}: {} counters, {} gauges, {} histograms",
        back.counters.len(),
        back.gauges.len(),
        back.histograms.len(),
    );
    println!("open https://ui.perfetto.dev and load {trace_path}:");
    println!("  process 1 = simulated hardware (scheduler overlap, resident bytes)");
    println!("  process 2 = runtime threads (lock-free updater, engine iterations)");
}
