//! Extreme model scale with the SSD tier and the Lock-Free Updating
//! Mechanism — the Section 6.5 scenario.
//!
//! ```text
//! cargo run -p angel-examples --bin extreme_scale_ssd
//! ```
//!
//! Builds a multi-trillion-parameter T5-MoE, shows that it only fits once
//! the SSD tier is enabled, and compares synchronous vs lock-free updating.

use angel_core::{Engine, EngineConfig};
use angel_hw::fmt_bytes;
use angel_model::TransformerConfig;

fn main() {
    let base = TransformerConfig::t5_moe_1_2t();
    let per_expert = base.ffn_params_per_expert() * base.layers as u64;
    let servers = 16usize;
    println!(
        "cluster: {} × A100 servers ({} GPUs)\n",
        servers,
        servers * 8
    );

    // Sweep model scale: which tiers are needed, and where does even the
    // lock-free mechanism's own host-buffer footprint (4 B/param of FP16
    // parameter+gradient buffers, Algorithm 2) become the binding limit?
    println!(
        "{:>7}  {:>10}  {:>9}  {:>10}",
        "params", "no SSD", "SSD sync", "SSD+lockfree"
    );
    let mut demo: Option<TransformerConfig> = None;
    for target_t in [1u64, 2, 4, 8] {
        let model = base
            .clone()
            .with_experts((target_t * 1_000_000_000_000 / per_expert) as usize);
        let plain = EngineConfig::servers(servers).with_batch_size(4);
        let ssd = plain.clone().with_ssd(true);
        let lf = ssd.clone().with_lock_free(true);
        let fits = |c: &EngineConfig| Engine::initialize(&model, c).is_ok();
        let (a, b, c) = (fits(&plain), fits(&ssd), fits(&lf));
        println!(
            "{:>6}T  {:>10}  {:>9}  {:>10}",
            target_t,
            if a { "fits" } else { "OOM" },
            if b { "fits" } else { "OOM" },
            if c { "fits" } else { "OOM (buffers)" }
        );
        if c && demo.is_none() && !a {
            demo = Some(model);
        }
    }

    // Detailed look at the largest SSD-dependent scale that supports both
    // modes.
    let model = demo.expect("some scale needs SSD and fits lock-free");
    println!(
        "\nmodel: {} experts/layer, {:.2}T parameters, {} of model states",
        model.experts,
        model.total_params() as f64 / 1e12,
        fmt_bytes(model.model_state_bytes()),
    );

    let ssd_sync = EngineConfig::servers(servers)
        .with_batch_size(4)
        .with_ssd(true);
    let mut sync_engine = Engine::initialize(&model, &ssd_sync).expect("fits");
    let sync = sync_engine.train_iteration();
    println!(
        "\nsynchronous: placement GPU {} / CPU {} / SSD {} per rank",
        fmt_bytes(sync_engine.placement().gpu_bytes),
        fmt_bytes(sync_engine.placement().cpu_bytes),
        fmt_bytes(sync_engine.placement().ssd_bytes),
    );
    println!(
        "  iteration {:.1} s — each optimizer cycle drags the FP32 states through \
         3.5 GB/s flash ({:.1} s), the Section 4.3 bottleneck (\"nearly 80% of the \
         iteration time is idle\"; here updates dominate unless amortized — see \
         table6_ssd_lockfree).",
        sync.iter_time_ns as f64 / 1e9,
        sync.update_cycle_ns as f64 / 1e9,
    );

    let mut lf_engine =
        Engine::initialize(&model, &ssd_sync.clone().with_lock_free(true)).expect("fits");
    let lf = lf_engine.train_iteration();
    println!(
        "\n+ lock-free: {:.2} samples/s; GPU-bound iteration {:.1} ms; update staleness \
         {:.1} iterations (convergence impact: see `table6_convergence`)",
        lf.samples_per_sec,
        lf.iter_time_ns as f64 / 1e6,
        lf.staleness_iters,
    );
}
