//! Numeric-identity probe: prints the exact quantities the paper-claims
//! tests depend on, so refactors of the planning pipeline can be checked
//! for bit-identical behaviour (`cargo run --bin numeric_probe`).

use angel_baselines::{search_best_strategy, DeepSpeed};
use angel_core::{Engine, EngineConfig};
use angel_hw::ClusterSpec;
use angel_model::TransformerConfig;

fn main() {
    // Table 5 capacity numbers.
    for base in [TransformerConfig::gpt3_28b(), TransformerConfig::t5_27b()] {
        let ds = DeepSpeed::new(ClusterSpec::single_a100(), 1);
        println!("{} ds_max_layers={}", base.name, ds.max_layers(&base));
        println!(
            "{} angel_max_layers={}",
            base.name,
            Engine::max_layers(&base, &EngineConfig::single_server())
        );
        println!(
            "{} angel_max_layers_ssd={}",
            base.name,
            Engine::max_layers(&base, &EngineConfig::single_server().with_ssd(true))
        );
    }

    // Engine iteration numbers across representative configs.
    let configs: Vec<(&str, TransformerConfig, EngineConfig)> = vec![
        (
            "1.7b_b8",
            TransformerConfig::gpt3_1_7b(),
            EngineConfig::single_server().with_batch_size(8),
        ),
        (
            "28b_b4",
            TransformerConfig::gpt3_28b(),
            EngineConfig::single_server().with_batch_size(4),
        ),
        (
            "175b_32srv_b8",
            TransformerConfig::gpt3_175b(),
            EngineConfig::servers(32).with_batch_size(8),
        ),
        (
            "moe_8srv_ssd_b4",
            TransformerConfig::t5_moe_1_2t().with_experts(512),
            EngineConfig::servers(8).with_batch_size(4).with_ssd(true),
        ),
        (
            "moe_8srv_ssd_lf_b4",
            TransformerConfig::t5_moe_1_2t().with_experts(512),
            EngineConfig::servers(8)
                .with_batch_size(4)
                .with_ssd(true)
                .with_lock_free(true),
        ),
    ];
    for (tag, model, cfg) in configs {
        match Engine::initialize(&model, &cfg) {
            Ok(mut e) => {
                let p = e.placement();
                let s = e.train_iteration();
                println!(
                    "{tag} iter={} sps={:.9} gpu={:.9} pcie={:.9} comm={:.9} ov={:.9} peak={} resident={:.9} upd={} stale={:.9} place=({},{},{},{})",
                    s.iter_time_ns,
                    s.samples_per_sec,
                    s.gpu_utilization,
                    s.pcie_utilization,
                    s.comm_utilization,
                    s.overlap_ratio,
                    s.peak_gpu_bytes,
                    s.resident_fraction,
                    s.update_cycle_ns,
                    s.staleness_iters,
                    p.gpu_bytes,
                    p.cpu_bytes,
                    p.ssd_bytes,
                    p.rank_state_bytes,
                );
            }
            Err(e) => println!("{tag} err={e:?}"),
        }
    }

    // DeepSpeed iteration numbers.
    for b in [1u64, 4, 8, 16] {
        let m = TransformerConfig::gpt3_13b();
        match DeepSpeed::new(ClusterSpec::single_a100(), b).iter_stats(&m) {
            Some(s) => println!(
                "ds_13b_b{b} iter={} sps={:.9} gpu={:.9}",
                s.iter_time_ns, s.samples_per_sec, s.gpu_utilization
            ),
            None => println!("ds_13b_b{b} oom"),
        }
    }
    let m28 = TransformerConfig::gpt3_28b().with_layers(
        DeepSpeed::new(ClusterSpec::single_a100(), 1).max_layers(&TransformerConfig::gpt3_28b()),
    );
    for b in [1u64, 8, 24] {
        match DeepSpeed::new(ClusterSpec::single_a100(), b)
            .with_ssd(true)
            .iter_stats(&m28)
        {
            Some(s) => println!(
                "ds_28b_ssd_b{b} iter={} sps={:.9} gpu={:.9}",
                s.iter_time_ns, s.samples_per_sec, s.gpu_utilization
            ),
            None => println!("ds_28b_ssd_b{b} oom"),
        }
    }

    // Megatron strategy-search numbers.
    for (tag, model, servers, b) in [
        (
            "mega_1.7b_1srv",
            TransformerConfig::gpt3_1_7b(),
            1usize,
            8u64,
        ),
        ("mega_13b_4srv", TransformerConfig::gpt3_13b(), 4, 2),
        ("mega_30b_4srv", TransformerConfig::gpt3_30b(), 4, 1),
    ] {
        match search_best_strategy(&model, &ClusterSpec::a100_tencent(servers), b) {
            Some(e) => println!(
                "{tag} tp={} pp={} dp={} mb={} m={} iter={} sps={:.9} bubble={:.9}",
                e.strategy.tp,
                e.strategy.pp,
                e.strategy.dp,
                e.strategy.micro_batch,
                e.strategy.num_micro_batches,
                e.iter_time_ns,
                e.samples_per_sec,
                e.bubble_fraction
            ),
            None => println!("{tag} oom"),
        }
    }
}
