//! Fine-tuning scenario — the workload that motivates Angel-PTM's design
//! (Section 3.1: fine-tuning is ~90% of Tencent's tasks, runs with small
//! batches, and suffers "low efficiency on GPU utilization").
//!
//! ```text
//! cargo run -p angel-examples --bin finetune_small_batch
//! ```
//!
//! Shows how hierarchical memory shrinks the GPUs needed for a fixed
//! fine-tuning job, and how the dynamic GPU cache recovers utilization at
//! small batch sizes.

use angel_core::{Engine, EngineConfig};
use angel_model::TransformerConfig;

fn main() {
    let model = TransformerConfig::gpt3_13b();
    println!(
        "fine-tuning {} (batch 2 per GPU — small to avoid overfitting)\n",
        model.name
    );

    // How few servers can host the job at all? Without hierarchical memory
    // (GPU-only states, à la pure ZeRO-3), 13B × 16 B = 203 GB of states
    // would already need > 5 fully-dedicated A100s before activations.
    println!("servers  fits  samples/s  GPU-util  cache");
    for servers in [1usize, 2, 4] {
        let cfg = EngineConfig::servers(servers).with_batch_size(2);
        match Engine::initialize(&model, &cfg) {
            Ok(mut e) => {
                let cache = e.cache_plan().cached_fraction;
                let s = e.train_iteration();
                println!(
                    "{servers:7}  yes   {:8.2}  {:7.0}%  {:4.0}%",
                    s.samples_per_sec,
                    s.gpu_utilization * 100.0,
                    cache * 100.0
                );
            }
            Err(e) => println!("{servers:7}  no ({e})"),
        }
    }

    // The cache is what keeps small-batch utilization up: compare.
    println!("\nGPU cache ablation on 1 server (the Section 4.2 caching technique):");
    for (label, cfg) in [
        (
            "with cache   ",
            EngineConfig::single_server().with_batch_size(2),
        ),
        (
            "without cache",
            EngineConfig::single_server()
                .with_batch_size(2)
                .with_gpu_cache(false),
        ),
    ] {
        let mut e = Engine::initialize(&model, &cfg).expect("fits");
        let s = e.train_iteration();
        println!(
            "  {label}: {:.2} samples/s, GPU util {:.0}%",
            s.samples_per_sec,
            s.gpu_utilization * 100.0
        );
    }

    // Scaling the same job up and down needs no re-configuration — the
    // "seamless scalability" requirement: same model, same code, different
    // server count.
    println!("\nelastic re-scale (no user-side parallelism changes):");
    for servers in [1usize, 2, 4, 8] {
        let cfg = EngineConfig::servers(servers).with_batch_size(2);
        if let Ok(mut e) = Engine::initialize(&model, &cfg) {
            let s = e.train_iteration();
            println!(
                "  {:3} GPUs → {:8.2} samples/s",
                servers * 8,
                s.samples_per_sec
            );
        }
    }
}
