//! Determinism: identical inputs must produce identical schedules, reports
//! and (for synchronous training) identical losses — the property that makes
//! the experiment harnesses reproducible.

use angel_core::Engine;
use angel_integration::{server, small_gpt};
use angel_model::TransformerConfig;
use angel_train::{train_sync, CharCorpus, TrainConfig};
use proptest::prelude::*;

#[test]
fn engine_reports_are_deterministic() {
    let run = || {
        let mut e = Engine::initialize(&small_gpt(), &server(4)).unwrap();
        e.train_iteration()
    };
    assert_eq!(run(), run());
}

#[test]
fn schedules_are_deterministic() {
    let s1 = Engine::initialize(&small_gpt(), &server(2))
        .unwrap()
        .schedule()
        .tasks
        .clone();
    let s2 = Engine::initialize(&small_gpt(), &server(2))
        .unwrap()
        .schedule()
        .tasks
        .clone();
    assert_eq!(s1, s2);
}

#[test]
fn sync_training_is_bit_deterministic() {
    let corpus = CharCorpus::generate(12, 5_000, 5);
    let cfg = TrainConfig {
        steps: 40,
        ..Default::default()
    };
    let a = train_sync(&cfg, &corpus);
    let b = train_sync(&cfg, &corpus);
    assert_eq!(a.valid_loss.to_bits(), b.valid_loss.to_bits());
    assert_eq!(a.loss_curve, b.loss_curve);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Any (batch, layers) combination either initializes deterministically
    /// or fails deterministically — and never violates the GPU budget.
    #[test]
    fn engine_init_total_function(batch in 1u64..16, layers in 2usize..12) {
        let model = TransformerConfig::gpt3_1_7b().with_layers(layers).with_seq_len(256);
        let cfg = server(batch);
        let r1 = Engine::initialize(&model, &cfg);
        let r2 = Engine::initialize(&model, &cfg);
        match (r1, r2) {
            (Ok(e1), Ok(e2)) => {
                prop_assert_eq!(e1.schedule().stats, e2.schedule().stats);
                prop_assert!(e1.schedule().stats.peak_gpu_bytes <= cfg.gpu_budget());
            }
            (Err(a), Err(b)) => prop_assert_eq!(a, b),
            _ => prop_assert!(false, "non-deterministic initialization"),
        }
    }

    /// Throughput is monotone non-increasing in model depth at fixed config.
    #[test]
    fn deeper_models_are_never_faster(extra in 1usize..8) {
        let base = TransformerConfig::gpt3_1_7b().with_layers(4).with_seq_len(256);
        let deeper = base.clone().with_layers(4 + extra);
        let s_base = Engine::initialize(&base, &server(2)).unwrap().train_iteration();
        let s_deep = Engine::initialize(&deeper, &server(2)).unwrap().train_iteration();
        prop_assert!(s_deep.samples_per_sec <= s_base.samples_per_sec * 1.001);
    }
}

/// `PageAllocator::state_fingerprint` (compiled under the `verify-extras`
/// feature this harness enables) is a *replay-deterministic* digest: two
/// allocators driven through the same alloc → fragment → compact → move
/// sequence agree at every checkpoint, including the data hashes of backed
/// pages. This is the property the no-side-effect regression tests in
/// `angel_core::allocator` lean on.
#[test]
fn allocator_fingerprints_are_replay_deterministic() {
    use angel_core::PageAllocator;
    use angel_hw::DeviceId;

    const PS: u64 = 256;
    let gpu = DeviceId::gpu(0);

    // Drive one allocator through a compact-then-move history, reporting a
    // fingerprint checkpoint after every phase.
    let drive = || -> Vec<String> {
        let mut a = PageAllocator::with_page_size(PS, true);
        a.add_pool(gpu, 64 * PS).unwrap();
        a.add_pool(DeviceId::CPU, 64 * PS).unwrap();
        let mut checkpoints = Vec::new();

        // Phase 1: populate, with deterministic payloads.
        let tensors: Vec<_> = (0..12)
            .map(|i| {
                let t = a
                    .alloc_tensor_raw(PS / 2 + (i as u64 % 5) * 32, gpu)
                    .unwrap();
                let bytes = a.tensor(t).unwrap().bytes();
                a.write_tensor(t, &vec![i as u8; bytes as usize]).unwrap();
                t
            })
            .collect();
        checkpoints.push(a.state_fingerprint());

        // Phase 2: fragment by releasing every other tensor.
        for t in tensors.iter().skip(1).step_by(2) {
            a.release_tensor(*t).unwrap();
        }
        checkpoints.push(a.state_fingerprint());

        // Phase 3: compact the survivors.
        let report = a.compact_device(gpu).unwrap();
        assert!(report.pages_compacted + report.pages_reclaimed > 0);
        checkpoints.push(a.state_fingerprint());

        // Phase 4: move a survivor off-device and back (the atomic
        // re-materializing move path).
        let survivor = tensors[0];
        a.move_tensor(survivor, DeviceId::CPU).unwrap();
        checkpoints.push(a.state_fingerprint());
        a.move_tensor(survivor, gpu).unwrap();
        checkpoints.push(a.state_fingerprint());
        checkpoints
    };

    let (a, b) = (drive(), drive());
    assert_eq!(a.len(), 5);
    for (i, (x, y)) in a.iter().zip(&b).enumerate() {
        assert_eq!(x, y, "fingerprint diverged at checkpoint {i}");
    }
    // And the checkpoints are genuinely distinct states, not a constant.
    assert_ne!(a[0], a[1]);
    assert_ne!(a[1], a[2]);
}
