//! The paper's headline claims, as executable assertions. Each test names
//! the table/figure it guards; thresholds are deliberately looser than the
//! harness outputs so normal calibration drift cannot break CI while the
//! *shape* (who wins, where crossovers fall) stays pinned.

use angel_baselines::{search_best_strategy, DeepSpeed};
use angel_core::{Engine, EngineConfig};
use angel_hw::ClusterSpec;
use angel_model::TransformerConfig;

/// Table 5: Angel-PTM supports ~2× DeepSpeed's maximum model scale on one
/// server (paper: +96.4% GPT, +114.8% T5).
#[test]
fn table5_scale_gain() {
    for base in [TransformerConfig::gpt3_28b(), TransformerConfig::t5_27b()] {
        let ds = DeepSpeed::new(ClusterSpec::single_a100(), 1);
        let ds_params = base
            .clone()
            .with_layers(ds.max_layers(&base))
            .total_params();
        let angel_layers = Engine::max_layers(&base, &EngineConfig::single_server());
        let angel_params = base.clone().with_layers(angel_layers).total_params();
        let gain = angel_params as f64 / ds_params as f64;
        assert!(
            gain > 1.6 && gain < 2.6,
            "{}: Angel/DeepSpeed scale ratio {gain:.2} (paper ≈ 2.0)",
            base.name
        );
        // And the absolute ballpark of the paper's numbers.
        assert!(
            (25e9..35e9).contains(&(ds_params as f64)),
            "DeepSpeed max ≈ 28B, got {ds_params}"
        );
        assert!(
            (45e9..65e9).contains(&(angel_params as f64)),
            "Angel max ≈ 55B, got {angel_params}"
        );
    }
}

/// Table 5: at DeepSpeed's maximum model, Angel-PTM is faster (paper: +44%
/// GPT, +96.7% T5 at each system's best batch).
#[test]
fn table5_same_model_throughput() {
    let base = TransformerConfig::gpt3_28b();
    let ds = DeepSpeed::new(ClusterSpec::single_a100(), 1);
    let model = base.clone().with_layers(ds.max_layers(&base));
    let mut best_ds: f64 = 0.0;
    let mut best_angel: f64 = 0.0;
    for b in [1u64, 4, 8, 16, 24, 32] {
        if let Some(s) = DeepSpeed::new(ClusterSpec::single_a100(), b).iter_stats(&model) {
            best_ds = best_ds.max(s.samples_per_sec);
        }
        if let Ok(mut e) =
            Engine::initialize(&model, &EngineConfig::single_server().with_batch_size(b))
        {
            best_angel = best_angel.max(e.train_iteration().samples_per_sec);
        }
    }
    assert!(
        best_angel > best_ds,
        "Angel ({best_angel:.2}) must beat DeepSpeed ({best_ds:.2}) at the same model"
    );
}

/// Figure 7 (1×8): Megatron-LM's hand-tuned strategy is the fastest system
/// on the GPU-resident 1.7B model, with Angel within a few percent (paper:
/// −2.4%); from 30B Megatron OOMs while Angel continues.
#[test]
fn figure7_small_model_crossover() {
    let small = TransformerConfig::gpt3_1_7b();
    let cluster = ClusterSpec::single_a100();
    let mega = search_best_strategy(&small, &cluster, 8).expect("1.7B fits");
    let mut angel =
        Engine::initialize(&small, &EngineConfig::single_server().with_batch_size(8)).unwrap();
    let a = angel.train_iteration().samples_per_sec;
    let ratio = a / mega.samples_per_sec;
    assert!(
        ratio > 0.90 && ratio < 1.05,
        "Angel/Megatron at 1.7B should be slightly below 1.0 (paper −2.4%), got {ratio:.3}"
    );
    // Megatron picked pure DP for the small model.
    assert_eq!((mega.strategy.tp, mega.strategy.pp), (1, 1));

    // 30B-class model: Megatron OOM on 8 GPUs, Angel fine.
    let m30 = TransformerConfig::gpt3_28b().with_layers(37);
    assert!(search_best_strategy(&m30, &cluster, 1).is_none());
    assert!(Engine::initialize(&m30, &EngineConfig::single_server()).is_ok());
}

/// Figure 8: throughput on GPT3-175B grows ~linearly from 256 to 768 GPUs
/// (paper: 3.12×; ours ≈ 3.0×, the super-linear margin being a second-order
/// effect — see EXPERIMENTS.md).
#[test]
fn figure8_scaling() {
    let model = TransformerConfig::gpt3_175b();
    let run = |servers: usize| {
        Engine::initialize(&model, &EngineConfig::servers(servers).with_batch_size(8))
            .unwrap()
            .train_iteration()
            .samples_per_sec
    };
    let at256 = run(32);
    let at768 = run(96);
    let scaling = at768 / at256;
    assert!(
        scaling > 2.7 && scaling < 3.3,
        "256→768 GPU scaling {scaling:.2} (paper 3.12)"
    );
}

/// Figure 9: T5-MoE under the paper's 9-experts-per-GPU rule scales
/// near-linearly (model grows with the fleet).
#[test]
fn figure9_moe_scaling() {
    let base = TransformerConfig::t5_moe_1_2t();
    let run = |servers: usize| {
        let ep = angel_model::moe::ExpertParallelism::paper_scaling(servers * 8);
        let model = ep.scale_model(&base);
        Engine::initialize(&model, &EngineConfig::servers(servers).with_batch_size(8))
            .unwrap()
            .train_iteration()
            .samples_per_sec
    };
    let at64 = run(8);
    let at256 = run(32);
    let scaling = at256 / at64;
    assert!(
        scaling > 3.5 && scaling <= 4.05,
        "64→256 GPU MoE scaling {scaling:.2} of 4.0"
    );
}

/// Table 6 (throughput): with the SSD tier, the lock-free mechanism takes
/// the optimizer cycle off the critical path entirely.
#[test]
fn table6_lockfree_removes_ssd_from_critical_path() {
    let model = TransformerConfig::t5_moe_1_2t().with_experts(512);
    let cfg = EngineConfig::servers(8).with_batch_size(4).with_ssd(true);
    let sync = Engine::initialize(&model, &cfg).unwrap().train_iteration();
    let lf = Engine::initialize(&model, &cfg.clone().with_lock_free(true))
        .unwrap()
        .train_iteration();
    assert!(
        lf.iter_time_ns * 2 < sync.iter_time_ns,
        "lock-free must at least halve the SSD-bound iteration: {} vs {}",
        lf.iter_time_ns,
        sync.iter_time_ns
    );
    assert!(lf.staleness_iters > 0.0);
}

/// Section 3.2 motivation: under offload churn (allocate/release waves with
/// overlapping lifetimes), chunking fails allocations that the page
/// allocator satisfies with the identical pool size.
#[test]
fn motivation_pages_beat_chunks_under_churn() {
    use angel_hw::DeviceId;
    use angel_memsim::{AddressAllocator, ChunkAllocator};

    let model = TransformerConfig::gpt3_13b().with_layers(12);
    let layers: Vec<Vec<u64>> = (0..model.layers)
        .map(|l| {
            angel_model::layer_inventory(&model, l, 2)
                .into_iter()
                .filter(|t| t.class != angel_model::TensorClass::Activation)
                .map(|t| t.bytes)
                .collect()
        })
        .collect();
    let window: u64 = layers.iter().take(4).flatten().sum();
    let capacity = window * 112 / 100; // 12% slack over a 4-layer window
    let chunk = layers.iter().flatten().copied().max().unwrap();

    // Chunk allocator: sliding window of 3 live layers, several epochs.
    let mut chunked = ChunkAllocator::new(capacity, chunk);
    let mut chunk_failures = 0u64;
    let mut live: std::collections::VecDeque<Vec<angel_memsim::Allocation>> = Default::default();
    for _ in 0..6 {
        for layer in &layers {
            if live.len() >= 4 {
                for a in live.pop_front().unwrap() {
                    chunked.free(a);
                }
            }
            let mut batch = Vec::new();
            for &b in layer {
                match chunked.allocate(b) {
                    Ok(a) => batch.push(a),
                    Err(_) => chunk_failures += 1,
                }
            }
            live.push_back(batch);
        }
        while let Some(batch) = live.pop_front() {
            for a in batch {
                chunked.free(a);
            }
        }
    }

    // Page allocator: same trace, same pool size — zero failures.
    let mut pages = angel_core::PageAllocator::with_page_size(4 << 20, false);
    pages.add_pool(DeviceId::gpu(0), capacity).unwrap();
    let mut page_failures = 0u64;
    let mut live: std::collections::VecDeque<Vec<angel_core::TensorId>> = Default::default();
    for _ in 0..6 {
        for layer in &layers {
            if live.len() >= 4 {
                for t in live.pop_front().unwrap() {
                    pages.release_tensor(t).unwrap();
                }
            }
            let mut batch = Vec::new();
            for &b in layer {
                match pages.alloc_tensor_raw(b, DeviceId::gpu(0)) {
                    Ok(t) => batch.push(t),
                    Err(_) => page_failures += 1,
                }
            }
            live.push_back(batch);
        }
        while let Some(batch) = live.pop_front() {
            for t in batch {
                pages.release_tensor(t).unwrap();
            }
        }
    }

    assert_eq!(
        page_failures, 0,
        "page allocator must satisfy the whole trace"
    );
    assert!(
        chunk_failures > 0,
        "chunking must fail under churn at the same pool size (got {chunk_failures})"
    );
}
