//! End-to-end integration: models flow from `angel-model` through the
//! tracer, scheduler, allocator and simulator, and the reported statistics
//! are mutually consistent.

use angel_core::{Engine, EngineConfig, Error};
use angel_hw::DeviceId;
use angel_integration::{server, small_gpt};
use angel_model::TransformerConfig;

#[test]
fn engine_runs_every_table4_dense_model_on_enough_servers() {
    for model in TransformerConfig::table4() {
        if model.is_moe() {
            continue; // covered separately (needs expert-parallel fleets)
        }
        // Pick a fleet that surely fits: states/16 GPUs-worth of servers.
        let servers = (model.model_state_bytes() / (200u64 << 30) + 1) as usize;
        let cfg = EngineConfig::servers(servers.max(1)).with_batch_size(1);
        let mut engine = Engine::initialize(&model, &cfg)
            .unwrap_or_else(|e| panic!("{} on {servers} servers: {e}", model.name));
        let s = engine.train_iteration();
        assert!(s.samples_per_sec > 0.0, "{}", model.name);
        assert!(s.gpu_utilization > 0.0 && s.gpu_utilization <= 1.0);
        assert!(s.peak_gpu_bytes <= cfg.gpu_budget(), "{}", model.name);
    }
}

#[test]
fn moe_model_runs_under_expert_parallelism() {
    let ep = angel_model::moe::ExpertParallelism::paper_scaling(64);
    let model = ep.scale_model(&TransformerConfig::t5_moe_1_2t());
    let cfg = EngineConfig::servers(8).with_batch_size(4);
    let mut engine = Engine::initialize(&model, &cfg).expect("MoE fits with local experts");
    let s = engine.train_iteration();
    assert!(s.samples_per_sec > 0.0);
}

#[test]
fn placement_accounting_is_consistent() {
    let mut engine = Engine::initialize(&small_gpt(), &server(4)).unwrap();
    let p = engine.placement();
    // Everything placed somewhere; no tier over-filled.
    assert!(p.gpu_bytes + p.cpu_bytes + p.ssd_bytes > 0);
    assert_eq!(p.ssd_bytes, 0, "SSD off by default");
    // Allocator pools reflect the CPU placement: used bytes within pool.
    let alloc = engine.allocator();
    let cpu = alloc.stats(DeviceId::CPU);
    assert!(cpu.used_pages <= cpu.capacity_pages);
    let s = engine.train_iteration();
    assert!(s.resident_fraction >= 0.0 && s.resident_fraction <= 1.0);
}

#[test]
fn schedule_tasks_cover_all_steps() {
    let engine = Engine::initialize(&small_gpt(), &server(2)).unwrap();
    let schedule = engine.schedule();
    let n = small_gpt().layers;
    assert_eq!(schedule.num_steps, 2 * n);
    // One compute per step, gathers for every step, moves for every page.
    let computes = schedule
        .tasks
        .iter()
        .filter(|t| matches!(t.op, angel_core::TaskOp::Compute(_)))
        .count();
    assert_eq!(computes, 2 * n);
    let gathers = schedule
        .tasks
        .iter()
        .filter(|t| matches!(t.op, angel_core::TaskOp::AllGather { .. }))
        .count();
    assert!(gathers >= 2 * n);
}

#[test]
fn capacity_errors_are_informative() {
    let huge = TransformerConfig::gpt3_175b().with_layers(2000);
    match Engine::initialize(&huge, &server(1)) {
        Err(Error::ModelTooLarge {
            state_bytes,
            usable_bytes,
        }) => {
            assert!(state_bytes > usable_bytes);
        }
        other => panic!("expected ModelTooLarge, got {:?}", other.map(|_| ())),
    }
    // Batch so large even one layer cannot run.
    match Engine::initialize(&TransformerConfig::gpt3_120b(), &server(512)) {
        Err(Error::WorkingSetTooLarge {
            layer_bytes,
            gpu_bytes,
        }) => {
            assert!(layer_bytes > gpu_bytes);
        }
        other => panic!("expected WorkingSetTooLarge, got {:?}", other.map(|_| ())),
    }
}

#[test]
fn ssd_tier_extends_capacity_end_to_end() {
    let base = TransformerConfig::gpt3_28b();
    let without = Engine::max_layers(&base, &server(1));
    let with = Engine::max_layers(&base, &server(1).with_ssd(true));
    assert!(
        with > without * 2,
        "SSD should far more than double capacity: {without} → {with}"
    );
}

#[test]
fn lock_free_mode_reports_background_updates() {
    let mut engine =
        Engine::initialize(&small_gpt(), &server(2).with_ssd(true).with_lock_free(true)).unwrap();
    let s = engine.train_iteration();
    assert!(s.update_cycle_ns > 0);
    // Lock-free iterations exclude the update cycle from the critical path.
    let mut sync_engine = Engine::initialize(&small_gpt(), &server(2).with_ssd(true)).unwrap();
    let sync = sync_engine.train_iteration();
    assert!(
        s.iter_time_ns <= sync.iter_time_ns,
        "lock-free {} vs sync {}",
        s.iter_time_ns,
        sync.iter_time_ns
    );
}

#[test]
fn utilization_improves_with_batch_size() {
    let low = Engine::initialize(&small_gpt(), &server(1))
        .unwrap()
        .train_iteration();
    let high = Engine::initialize(&small_gpt(), &server(16))
        .unwrap()
        .train_iteration();
    assert!(high.samples_per_sec > low.samples_per_sec);
}
