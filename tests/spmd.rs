//! SPMD verification integration: real engine lowerings project onto their
//! device meshes and certify; each planted mutation class (reordered
//! collective, dropped group member, crossed dp/pp bytes, hoisted pp-recv
//! deadlock) is caught; and a property sweep over random cluster shapes
//! and plan factorizations shows no false positives — every plan
//! `lower_schedule` produces certifies, and its simulation completes.

use angel_core::plan::{ParallelismPlan, ZeroStage};
use angel_core::verify::spmd::{EventSite, SpmdTrace};
use angel_core::{CommKind, CommRecord, Engine, EngineConfig};
use angel_hw::DeviceMesh;
use angel_integration::small_gpt;

/// An engine on one server with a dp=2 × pp=2 × tp=2 mesh — small enough
/// to project every rank, rich enough to exercise all three channels.
fn meshed_engine() -> (Engine, DeviceMesh) {
    let model = small_gpt().with_layers(8);
    let plan = ParallelismPlan {
        dp: 2,
        tp: 2,
        pp: 2,
        zero_stage: ZeroStage::Full,
    };
    let config = EngineConfig::single_server()
        .with_batch_size(2)
        .with_parallelism(plan);
    let mesh = config.device_mesh().expect("plan factors one server");
    let engine = Engine::initialize(&model, &config).expect("mesh plan initializes");
    (engine, mesh)
}

fn journal(engine: &Engine) -> Vec<CommRecord> {
    engine.lower_iteration().comm_log
}

/// Index of the first event on `rank`'s program matching `pred`.
fn find(trace: &SpmdTrace, rank: usize, pred: impl Fn(&EventSite, CommKind) -> bool) -> usize {
    trace
        .program(rank)
        .iter()
        .position(|e| pred(&e.site, e.kind))
        .expect("event present in projected program")
}

#[test]
fn engine_lowering_certifies_full_and_reduced() {
    let (engine, mesh) = meshed_engine();
    let log = journal(&engine);
    let full = SpmdTrace::project_full(&log, &mesh).verify();
    full.assert_certified("meshed engine (full)");
    assert_eq!(full.ranks_checked, 8);
    let reduced = SpmdTrace::project_reduced(&log, &mesh).verify();
    reduced.assert_certified("meshed engine (reduced)");
    assert_eq!(reduced.ranks_checked, mesh.pp());
    assert!(reduced.reduced);
    // The engine's own surface agrees.
    let report = engine.verify_spmd().expect("mesh exists");
    assert!(report.is_certified());
}

/// Mutation class 1 — reordered collective: one rank issues its two
/// dp-channel collectives of a step pair in swapped order. Its dp group
/// sequence diverges from every peer's and matching reports the site.
#[test]
fn reordered_dp_collective_is_caught() {
    let (engine, mesh) = meshed_engine();
    let mut trace = SpmdTrace::project_full(&journal(&engine), &mesh);
    let is_dp = |s: &EventSite| {
        matches!(
            s,
            EventSite::Group {
                group: angel_core::CommGroup::Dp,
                ..
            }
        )
    };
    let first = find(&trace, 3, |s, _| is_dp(s));
    // The backward half's dp traffic (reduce-scatter) differs from the
    // forward gathers, so swapping across the halves must be visible.
    let last = trace.program(3).len()
        - 1
        - trace
            .program(3)
            .iter()
            .rev()
            .position(|e| is_dp(&e.site))
            .expect("dp event");
    assert_ne!(first, last);
    trace.swap_events(3, first, last);
    let report = trace.verify();
    assert!(!report.is_certified());
    assert!(
        report.mismatches.iter().any(|m| m.site.starts_with("dp")),
        "expected a dp sequence mismatch:\n{}",
        report.describe()
    );
}

/// Mutation class 2 — dropped group member: one rank skips a tp
/// all-reduce its NVLink peer still blocks on.
#[test]
fn dropped_tp_member_is_caught() {
    let (engine, mesh) = meshed_engine();
    let mut trace = SpmdTrace::project_full(&journal(&engine), &mesh);
    let i = find(&trace, 5, |s, _| {
        matches!(
            s,
            EventSite::Group {
                group: angel_core::CommGroup::Tp,
                ..
            }
        )
    });
    trace.remove_event(5, i);
    let report = trace.verify();
    assert!(!report.is_certified());
    assert!(
        report.mismatches.iter().any(|m| m.site.starts_with("tp")),
        "expected a tp count mismatch:\n{}",
        report.describe()
    );
}

/// Mutation class 3 — crossed bytes: a dp gather on one rank priced with
/// the pp boundary payload. Caught as a byte mismatch at the exact site.
#[test]
fn crossed_dp_pp_bytes_are_caught() {
    let (engine, mesh) = meshed_engine();
    let log = journal(&engine);
    let pp_bytes = log
        .iter()
        .find(|r| r.kind == CommKind::P2pSend)
        .expect("pp boundary present")
        .bytes;
    let mut trace = SpmdTrace::project_full(&log, &mesh);
    let i = find(&trace, 6, |s, _| {
        matches!(
            s,
            EventSite::Group {
                group: angel_core::CommGroup::Dp,
                ..
            }
        )
    });
    assert_ne!(trace.program(6)[i].bytes, pp_bytes);
    trace.set_bytes(6, i, pp_bytes);
    let report = trace.verify();
    assert!(!report.is_certified());
    assert!(
        report
            .mismatches
            .iter()
            .any(|m| m.reason.contains(&pp_bytes.to_string())),
        "mismatch must cite the crossed byte count:\n{}",
        report.describe()
    );
}

/// Mutation class 4 — pp/tp interleaving deadlock: stage 0's gradient
/// recv hoisted above the tp all-reduce (and its own activation send).
/// Rank 0 then waits on stage 1's final send while stage 1's first recv
/// waits on rank 0's send — a genuine cross-rank wait-for cycle, which
/// the wait-for graph reports (with the tp peer stalled behind it).
#[test]
fn hoisted_pp_recv_deadlock_cycle_is_caught() {
    let (engine, mesh) = meshed_engine();
    let mut trace = SpmdTrace::project_full(&journal(&engine), &mesh);
    let send = find(&trace, 0, |s, _| matches!(s, EventSite::Send { .. }));
    let recv = find(&trace, 0, |s, _| matches!(s, EventSite::Recv { .. }));
    assert_eq!(recv, send + 1, "boundary handshake is contiguous");
    // The event before the send is the last forward tp all-reduce.
    assert!(matches!(
        trace.program(0)[send - 1].site,
        EventSite::Group {
            group: angel_core::CommGroup::Tp,
            ..
        }
    ));
    trace.swap_events(0, send - 1, recv);
    let report = trace.verify();
    let deadlock = report.deadlock.as_ref().expect("deadlock expected");
    assert!(
        !deadlock.cycle.is_empty(),
        "a true wait-for cycle, not an orphan stall:\n{}",
        report.describe()
    );
    let cycle_ranks: Vec<usize> = deadlock.cycle.iter().map(|w| w.rank).collect();
    assert!(cycle_ranks.contains(&0), "{cycle_ranks:?}");
    let downstream = mesh.pp_neighbors(0).1.expect("stage 0 has a successor");
    assert!(cycle_ranks.contains(&downstream), "{cycle_ranks:?}");
    // The tp peer is collateral damage: stalled, but not part of the cycle.
    assert!(deadlock.stalled.iter().any(|w| w.rank == 1));
}

mod properties {
    use super::*;
    use proptest::prelude::*;

    /// Valid (servers, dp, pp, tp, zero) configurations: tp within the
    /// NVLink domain, pp dividing what remains, dp taking the rest.
    fn plans() -> impl Strategy<Value = (usize, ParallelismPlan)> {
        (1usize..5, 0usize..3, 0usize..3, 0u8..3).prop_map(|(servers, tp_pow, pp_pow, zero)| {
            let gpus = servers * 8;
            let tp = 1 << tp_pow; // 1, 2, 4 — always divides a server's 8
            let pp = (1 << pp_pow).min(gpus / tp);
            let dp = gpus / (tp * pp);
            let zero_stage = match zero {
                0 => ZeroStage::None,
                1 => ZeroStage::Optimizer,
                _ => ZeroStage::Full,
            };
            (
                servers,
                ParallelismPlan {
                    dp,
                    tp,
                    pp,
                    zero_stage,
                },
            )
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// No false positives: every plan `lower_schedule` produces over a
        /// random cluster shape certifies — exhaustively on the full rank
        /// set and under symmetry reduction — and its single-rank
        /// simulation completes (certified plans never deadlock in the
        /// simulator).
        #[test]
        fn lowered_plans_always_certify((servers, plan) in plans()) {
            let model = small_gpt().with_layers(2 * plan.pp.max(4));
            let config = EngineConfig::servers(servers)
                .with_batch_size(1)
                .with_parallelism(plan);
            let mesh = config.device_mesh().expect("constructed to factor");
            let engine = Engine::initialize(&model, &config)
                .expect("small model fits every shape");
            let lowered = engine.lower_iteration();
            let full = SpmdTrace::project_full(&lowered.comm_log, &mesh).verify();
            prop_assert!(full.is_certified(), "full:\n{}", full.describe());
            let reduced = SpmdTrace::project_reduced(&lowered.comm_log, &mesh).verify();
            prop_assert!(reduced.is_certified(), "reduced:\n{}", reduced.describe());
            prop_assert_eq!(reduced.ranks_checked, mesh.pp());
            // Certified ⇒ the simulated execution drains every task.
            let report = lowered.sim.run();
            prop_assert!(report.failed_tasks.is_empty());
            prop_assert!(report.makespan > 0);
        }
    }
}
