//! Shared helpers for the integration tests.

use angel_core::EngineConfig;
use angel_model::TransformerConfig;

/// A model small enough for fast tests but large enough to exercise
/// sharding and scheduling.
pub fn small_gpt() -> TransformerConfig {
    TransformerConfig::gpt3_1_7b()
        .with_layers(6)
        .with_seq_len(512)
}

/// One A100 server at a given batch size.
pub fn server(batch: u64) -> EngineConfig {
    EngineConfig::single_server().with_batch_size(batch)
}
