//! Static verification of every lowering the system produces, plus the
//! bounded model checker over the lock-free updating protocol.
//!
//! Three layers of assurance:
//!
//! 1. Every production lowering — the Engine's planned iteration, the
//!    DeepSpeed and Megatron baselines, and both checkpoint graphs — must
//!    verify clean (no races, no lifetime violations, acyclic) and its
//!    proven peak-memory bound must dominate the simulated execution.
//! 2. Mutation tests: seeding a defect (deleting a dependency edge) must
//!    make the verifier complain — otherwise the verifier has no teeth.
//! 3. Random plans (proptest): on arbitrary self-balanced task graphs the
//!    static bound must still dominate the dynamic peak.

use angel_baselines::deepspeed::DeepSpeed;
use angel_baselines::megatron::{lower_strategy, MegatronStrategy};
use angel_core::plan::{checkpoint_restore_graph, checkpoint_write_graph};
use angel_core::verify::{check_lockfree, ModelConfig, Mutation, PlanGraph, ShutdownMode};
use angel_core::{lockfree::ClearPolicy, Engine, EngineConfig};
use angel_hw::ClusterSpec;
use angel_integration::small_gpt;
use angel_model::TransformerConfig;
use angel_sim::compute::GpuComputeModel;

fn verify_clean(sim: &angel_sim::Simulation, what: &str) {
    let verdict = PlanGraph::from_sim(sim).verify();
    verdict.assert_clean(what);
    verdict.assert_covers(&sim.run(), what);
}

#[test]
fn engine_lowerings_verify_clean_across_configs() {
    let model = small_gpt();
    let configs = [
        ("sync cpu", EngineConfig::single_server().with_batch_size(2)),
        (
            "ssd",
            EngineConfig::single_server()
                .with_batch_size(2)
                .with_ssd(true),
        ),
        (
            "lock-free ssd",
            EngineConfig::single_server()
                .with_batch_size(2)
                .with_ssd(true)
                .with_lock_free(true),
        ),
    ];
    for (what, config) in configs {
        let engine = Engine::initialize(&model, &config).expect("engine must initialize");
        let lowered = engine.lower_iteration();
        verify_clean(&lowered.sim, &format!("engine lowering ({what})"));
    }
}

#[test]
fn deepspeed_lowering_verifies_clean() {
    let model = small_gpt();
    let ds = DeepSpeed::new(ClusterSpec::single_a100(), 2);
    let lo = ds
        .lower_iteration(&model)
        .expect("small model must fit DeepSpeed");
    verify_clean(lo.sim(), "DeepSpeed lowering");
}

#[test]
fn megatron_lowering_verifies_clean() {
    let model = TransformerConfig::gpt3_1_7b();
    let s = MegatronStrategy {
        tp: 1,
        pp: 2,
        dp: 4,
        micro_batch: 1,
        num_micro_batches: 8,
    };
    let lo = lower_strategy(
        &model,
        s,
        &ClusterSpec::single_a100(),
        &GpuComputeModel::a100(),
    )
    .expect("strategy must fit");
    verify_clean(lo.sim(), "Megatron lowering");
}

#[test]
fn checkpoint_graphs_verify_clean() {
    let model = small_gpt();
    let config = EngineConfig::single_server().with_ssd(true);
    verify_clean(
        checkpoint_write_graph(&model, &config).sim(),
        "checkpoint write graph",
    );
    verify_clean(
        checkpoint_restore_graph(&model, &config).sim(),
        "checkpoint restore graph",
    );
}

/// Mutation seed: delete the gather→compute dependency edge. The compute
/// then races the all-gather on the gathered-layer buffer — the verifier
/// must flag exactly that object.
#[test]
fn deleting_a_dependency_edge_plants_a_race() {
    let model = small_gpt();
    let config = EngineConfig::single_server().with_batch_size(2);
    let engine = Engine::initialize(&model, &config).expect("engine must initialize");
    let lowered = engine.lower_iteration();

    let mut graph = PlanGraph::from_sim(&lowered.sim);
    let gather = graph.task_by_label("all_gather s0");
    let compute = graph.task_by_label("compute s0");
    assert!(
        graph.remove_dep(compute, gather),
        "compute s0 must depend on all_gather s0"
    );
    let verdict = graph.verify();
    assert!(
        !verdict.races.is_empty(),
        "deleting the gather→compute edge must plant a race"
    );
    assert!(
        verdict
            .races
            .iter()
            .any(|r| r.first_label.contains("all_gather s0")
                || r.second_label.contains("all_gather s0")),
        "the planted race must involve the mutated gather: {:?}",
        verdict.races
    );
}

/// The model checker certifies the production protocol deadlock-free and
/// conserving under both clear policies and both shutdown modes, and
/// rejects the seeded protocol mutations — end-to-end over the same
/// decision functions the trainer executes.
#[test]
fn model_checker_certifies_protocol_and_rejects_mutations() {
    for policy in [ClearPolicy::OnUpdateReceipt, ClearPolicy::TakeAtSnapshot] {
        for shutdown in [ShutdownMode::Quiescent, ShutdownMode::Abort] {
            let mut cfg = ModelConfig::new(policy, shutdown);
            cfg.max_faults = 1;
            let ex = check_lockfree(&cfg);
            assert!(ex.complete, "exploration must be exhaustive");
            assert!(
                ex.violation.is_none(),
                "clean protocol must verify ({policy:?}, {shutdown:?}): {:?}",
                ex.violation
            );
        }
    }
    // Dropping the update receipt deadlocks quiescent shutdown under the
    // paper's receipt-based clearing.
    let mut cfg = ModelConfig::new(ClearPolicy::OnUpdateReceipt, ShutdownMode::Quiescent);
    cfg.mutation = Mutation::SkipReceipt;
    let ex = check_lockfree(&cfg);
    assert!(
        ex.violation.is_some(),
        "skipping the receipt must be caught"
    );
    assert!(!ex.trace.is_empty(), "a counterexample trace is produced");
}

mod random_plans {
    use super::*;
    use angel_sim::{MemEffect, Resources, SimTask, Simulation};
    use proptest::prelude::*;

    #[derive(Debug, Clone)]
    struct RandTask {
        resource: usize,
        duration: u64,
        acquire: u64,
        release_frac: u8,
        dep_picks: Vec<usize>,
    }

    fn rand_task() -> impl Strategy<Value = RandTask> {
        (
            0usize..3,
            0u64..2000,
            0u64..4096,
            0u8..101,
            proptest::collection::vec(any::<usize>(), 0..3),
        )
            .prop_map(
                |(resource, duration, acquire, release_frac, dep_picks)| RandTask {
                    resource,
                    duration,
                    acquire,
                    release_frac,
                    dep_picks,
                },
            )
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// On arbitrary DAGs over three streams and one memory domain —
        /// random durations, random dependency edges, and self-balanced
        /// memory effects (each task releases at most what it acquired) —
        /// the verifier's static peak bound dominates the simulator's
        /// observed peak.
        #[test]
        fn static_bound_dominates_simulated_peak(
            tasks in proptest::collection::vec(rand_task(), 1..24)
        ) {
            let mut res = Resources::new();
            let streams = [
                res.add_compute("s0"),
                res.add_compute("s1"),
                res.add_compute("s2"),
            ];
            let dom = res.add_mem_domain("mem", u64::MAX);
            let mut sim = Simulation::new(res);
            for (i, t) in tasks.iter().enumerate() {
                let deps: Vec<usize> = t.dep_picks.iter().filter_map(|p| {
                    if i == 0 { None } else { Some(p % i) }
                }).collect();
                let release = t.acquire * u64::from(t.release_frac) / 100;
                let task = SimTask::duration(streams[t.resource], t.duration)
                    .with_deps(deps)
                    .with_mem(MemEffect { domain: dom, acquire: t.acquire, release })
                    .with_label(format!("t{i}"));
                sim.submit(task);
            }
            let verdict = PlanGraph::from_sim(&sim).verify();
            let report = sim.run();
            prop_assert!(verdict.cycle.is_none());
            for (d, (&bound, &seen)) in
                verdict.peak_bounds.iter().zip(report.peak_mem.iter()).enumerate()
            {
                prop_assert!(
                    bound >= seen,
                    "domain {d}: static bound {bound} < simulated peak {seen}"
                );
            }
        }
    }
}
