//! Observability-layer integration tests: the merged Perfetto export is
//! byte-stable against a golden file, and the metrics snapshot of an engine
//! run is fully deterministic (only simulated/plan-derived values — wall
//! clock lives in the event ring, never in the snapshot).

use angel_core::obs::{merged_perfetto, RUNTIME_PID, SIM_PID};
use angel_core::{Engine, MetricsSnapshot, ObsEvent, ObsThread, Recorder};
use angel_integration::{server, small_gpt};
use angel_sim::{MemEffect, Resources, SimTask, Simulation, Work};

use angel_core::obs::ObsEventKind;

fn golden_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("golden/merged_timeline.json")
}

/// A tiny fully deterministic simulated iteration: one page move feeding a
/// kernel, with resident-bytes effects on one memory domain.
fn fixture_sim() -> (Simulation, angel_sim::ExecutionReport) {
    let mut r = Resources::new();
    let gpu = r.add_compute("gpu-stream");
    let pcie = r.add_link("pcie-h2d", 1_000_000_000, 0);
    let hbm = r.add_mem_domain("HBM", 1 << 20);
    let mut sim = Simulation::new(r);
    let mv = sim.submit(
        SimTask::new(pcie, Work::Bytes(4_000))
            .with_label("move_in:l0")
            .with_mem(MemEffect {
                domain: hbm,
                acquire: 4_000,
                release: 0,
            }),
    );
    let k = sim.submit(
        SimTask::new(gpu, Work::Duration(2_500))
            .with_deps([mv])
            .with_label("forward:l0"),
    );
    sim.submit(
        SimTask::new(pcie, Work::Bytes(4_000))
            .with_deps([k])
            .with_label("move_out:l0")
            .with_mem(MemEffect {
                domain: hbm,
                acquire: 0,
                release: 4_000,
            }),
    );
    let report = sim.run();
    (sim, report)
}

/// Hand-built runtime events with fixed timestamps — the real threads'
/// event shapes (span, instant, counter) without the real clock.
fn fixture_events() -> Vec<ObsEvent> {
    vec![
        ObsEvent {
            ts_ns: 1_000,
            dur_ns: 0,
            thread: ObsThread::TrainLoop,
            kind: ObsEventKind::Instant {
                name: "push_grads",
                layer: 0,
            },
        },
        ObsEvent {
            ts_ns: 1_500,
            dur_ns: 0,
            thread: ObsThread::TrainLoop,
            kind: ObsEventKind::Counter {
                name: "trainer.pending_grads",
                value: 1,
            },
        },
        ObsEvent {
            ts_ns: 2_000,
            dur_ns: 3_000,
            thread: ObsThread::Updating,
            kind: ObsEventKind::Span {
                name: "update_layer",
                layer: 0,
            },
        },
        ObsEvent {
            ts_ns: 5_500,
            dur_ns: 0,
            thread: ObsThread::Updating,
            kind: ObsEventKind::Counter {
                name: "trainer.pending_grads",
                value: 0,
            },
        },
        ObsEvent {
            ts_ns: 6_000,
            dur_ns: 2_000,
            thread: ObsThread::Engine,
            kind: ObsEventKind::Span {
                name: "train_iteration",
                layer: -1,
            },
        },
    ]
}

/// The merged export is byte-stable. Regenerate the golden file with
/// `ANGEL_REGEN_GOLDEN=1 cargo test -p angel-integration --test observability`.
#[test]
fn merged_export_matches_golden() {
    let (sim, report) = fixture_sim();
    let json = merged_perfetto(&sim, &report, &fixture_events());
    let path = golden_path();
    if std::env::var_os("ANGEL_REGEN_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &json).unwrap();
        return;
    }
    let golden = std::fs::read_to_string(&path)
        .expect("golden file present (regenerate with ANGEL_REGEN_GOLDEN=1)");
    assert_eq!(json, golden, "merged Perfetto export drifted from golden");
}

/// Structural assertions on the same fixture, so a legitimate format change
/// updates the golden file *and* must keep these properties.
#[test]
fn merged_export_has_both_processes_and_counters() {
    let (sim, report) = fixture_sim();
    let json = merged_perfetto(&sim, &report, &fixture_events());
    let doc: serde_json::Value = serde_json::from_str(&json).unwrap();
    let events = doc["traceEvents"].as_array().unwrap();

    let pids: std::collections::BTreeSet<u64> =
        events.iter().filter_map(|e| e["pid"].as_u64()).collect();
    assert!(pids.contains(&SIM_PID) && pids.contains(&RUNTIME_PID));

    // Simulated tracks: every completed task became an X event under SIM_PID.
    let sim_spans = events
        .iter()
        .filter(|e| e["ph"].as_str() == Some("X") && e["pid"].as_u64() == Some(SIM_PID))
        .count();
    assert_eq!(sim_spans, 3);

    // Runtime tracks: the updater span landed on the named updating thread.
    let thread_names: std::collections::BTreeMap<u64, String> = events
        .iter()
        .filter(|e| {
            e["name"].as_str() == Some("thread_name") && e["pid"].as_u64() == Some(RUNTIME_PID)
        })
        .map(|e| {
            (
                e["tid"].as_u64().unwrap(),
                e["args"]["name"].as_str().unwrap().to_string(),
            )
        })
        .collect();
    let upd = events
        .iter()
        .find(|e| e["name"].as_str() == Some("update_layer"))
        .expect("updater span exported");
    assert_eq!(
        thread_names[&upd["tid"].as_u64().unwrap()],
        "lockfree-updating"
    );
    assert_eq!(upd["dur"].as_f64().unwrap(), 3.0); // 3_000 ns = 3 µs

    // Counter tracks from both halves: simulated resident bytes + runtime
    // pending gradients.
    let counter_tracks: std::collections::BTreeSet<&str> = events
        .iter()
        .filter(|e| e["ph"].as_str() == Some("C"))
        .map(|e| e["name"].as_str().unwrap())
        .collect();
    assert!(counter_tracks.contains("HBM resident bytes"));
    assert!(counter_tracks.contains("trainer.pending_grads"));
}

/// Two identical engine runs produce byte-identical `MetricsSnapshot` JSON:
/// every recorded value is derived from the deterministic plan or the
/// simulated clock, never the wall clock.
#[test]
fn metrics_snapshot_is_deterministic() {
    let run = || {
        let rec = Recorder::enabled();
        let mut engine = Engine::initialize(&small_gpt(), &server(2)).expect("small model fits");
        engine.set_recorder(rec.clone());
        engine.train_iteration();
        engine.train_iteration();
        rec.snapshot().to_json_string()
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "metrics snapshot must not depend on the wall clock");

    let snap = MetricsSnapshot::from_json_str(&a).unwrap();
    assert_eq!(snap.counters["engine.iterations"], 2);
    assert!(snap.gauges.keys().any(|k| k.starts_with("alloc.")));
    assert!(snap.gauges.keys().any(|k| k.starts_with("sim.busy_ns.")));
    assert_eq!(snap.histograms["engine.iter_time_ns"].total, 2);
}
