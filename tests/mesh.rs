//! Device-mesh integration: declarative `ParallelismPlan`s lower through
//! the shared Trace → Shard → Place → Schedule → Lower pipeline, pass the
//! plan-graph verifier, and the degenerate plan reproduces the pre-mesh
//! lowering byte-for-byte.

use angel_core::plan::{ParallelismPlan, ZeroStage};
use angel_core::verify::PlanGraph;
use angel_core::{CommGroup, Engine, EngineConfig, Error};
use angel_integration::small_gpt;
use angel_model::TransformerConfig;

fn verify_clean(sim: &angel_sim::Simulation, what: &str) {
    let verdict = PlanGraph::from_sim(sim).verify();
    verdict.assert_clean(what);
    verdict.assert_covers(&sim.run(), what);
}

/// The explicit ZeRO-3 plan over every GPU is the default — configuring it
/// by hand must change nothing: same task graph, same resource surface,
/// same simulated iteration, byte for byte.
#[test]
fn explicit_zero3_plan_is_byte_identical_to_the_default() {
    let model = small_gpt();
    let base = EngineConfig::single_server().with_batch_size(2);
    let explicit = base
        .clone()
        .with_parallelism(ParallelismPlan::zero3(8))
        .with_micro_batches(1);

    let mut e_def = Engine::initialize(&model, &base).unwrap();
    let mut e_exp = Engine::initialize(&model, &explicit).unwrap();

    let lo_def = e_def.lower_iteration();
    let lo_exp = e_exp.lower_iteration();
    assert_eq!(lo_def.sim.num_tasks(), lo_exp.sim.num_tasks());
    assert_eq!(
        lo_def.sim.resources().iter().count(),
        lo_exp.sim.resources().iter().count(),
        "degenerate mesh must not add channels"
    );
    assert_eq!(lo_def.sim.run().makespan, lo_exp.sim.run().makespan);
    assert_eq!(e_def.train_iteration(), e_exp.train_iteration());
}

/// A multi-server dp × tp × pp composition lowers through the same staged
/// pipeline, registers per-group channels, and verifies clean: no races,
/// well-formed lifetimes, and a peak-memory bound that dominates execution.
#[test]
fn mesh_plan_lowers_and_verifies_clean() {
    let model = small_gpt().with_layers(8);
    let plan = ParallelismPlan {
        dp: 4,
        tp: 2,
        pp: 4,
        zero_stage: ZeroStage::Full,
    };
    let config = EngineConfig::servers(4)
        .with_batch_size(2)
        .with_parallelism(plan);
    let mut engine = Engine::initialize(&model, &config).expect("mesh plan must initialize");
    let lowered = engine.lower_iteration();
    let names: Vec<&str> = lowered
        .sim
        .resources()
        .iter()
        .map(|(_, name)| name)
        .collect();
    assert!(names.contains(&CommGroup::Dp.channel_name()));
    assert!(names.contains(&CommGroup::Tp.channel_name()));
    assert!(names.contains(&CommGroup::Pp.channel_name()));
    verify_clean(&lowered.sim, "mesh-plan lowering (dp=4 tp=2 pp=4)");

    let s = engine.train_iteration();
    assert!(s.iter_time_ns > 0);
    assert!(s.samples_per_sec > 0.0);
    assert!(s.gpu_utilization > 0.0 && s.gpu_utilization <= 1.0);
}

/// Replicated (Megatron-style) and ZeRO-1 stages flow through the engine
/// too: the same pipeline prices their larger resident states, and what
/// does not fit fails with a typed capacity error instead of a panic.
#[test]
fn replicated_stages_either_fit_or_fail_typed() {
    let model = small_gpt();
    for stage in [ZeroStage::None, ZeroStage::Optimizer] {
        let plan = ParallelismPlan {
            dp: 4,
            tp: 2,
            pp: 1,
            zero_stage: stage,
        };
        let config = EngineConfig::single_server().with_parallelism(plan);
        match Engine::initialize(&model, &config) {
            Ok(mut e) => {
                let s = e.train_iteration();
                assert!(s.samples_per_sec > 0.0);
            }
            Err(Error::ModelTooLarge { .. }) | Err(Error::OutOfPages { .. }) => {}
            Err(other) => panic!("unexpected error under {stage:?}: {other}"),
        }
    }
}

/// Micro-batch pipelining scales the iteration deterministically: the
/// lowered slot graph is identical, and the 1F1B slot count
/// `micro_batches + pp − 1` multiplies it.
#[test]
fn micro_batches_scale_the_pipeline_slots() {
    let model = small_gpt();
    let base = EngineConfig::single_server().with_batch_size(2);
    let m1 = Engine::initialize(&model, &base).unwrap().train_iteration();
    let m4 = Engine::initialize(&model, &base.clone().with_micro_batches(4))
        .unwrap()
        .train_iteration();
    assert_eq!(m4.iter_time_ns, 4 * m1.iter_time_ns);
    // Throughput is unchanged without a pipeline to fill (pp = 1): four
    // micro-batches take four slots and carry four times the samples.
    assert!((m4.samples_per_sec - m1.samples_per_sec).abs() / m1.samples_per_sec < 1e-9);
}

/// The planner holds up at cluster scale: 128 servers / 1024 GPUs, both as
/// pure ZeRO-3 and as a composed mesh, initialize and verify end to end —
/// the Figure 9 / Table 3 regime.
#[test]
fn planner_scales_to_1024_gpus() {
    let model = TransformerConfig::gpt3_28b();
    let cluster = EngineConfig::servers(128);
    assert_eq!(cluster.num_gpus(), 1024);

    // Pure ZeRO-3 over all 1024 ranks (the default plan at this scale).
    let mut flat = Engine::initialize(&model, &cluster.clone().with_batch_size(1))
        .expect("28B across 1024 GPUs must fit");
    let s = flat.train_iteration();
    assert!(s.samples_per_sec > 0.0);

    // Composed: ZeRO-3 across 256 dp groups × tp=2 × pp=2.
    let plan = ParallelismPlan {
        dp: 256,
        tp: 2,
        pp: 2,
        zero_stage: ZeroStage::Full,
    };
    let engine = Engine::initialize(&model, &cluster.with_batch_size(1).with_parallelism(plan))
        .expect("composed 1024-GPU plan must initialize");
    let lowered = engine.lower_iteration();
    assert!(lowered.sim.num_tasks() > 0);
    verify_clean(&lowered.sim, "1024-GPU composed plan");
}

/// Invalid factorization surfaces as a typed error from `initialize`, not
/// from deep inside the pipeline.
#[test]
fn invalid_plan_fails_fast() {
    let bad = EngineConfig::servers(2).with_parallelism(ParallelismPlan::zero3(8));
    match Engine::initialize(&small_gpt(), &bad) {
        Err(Error::InvalidParallelism(msg)) => {
            assert!(msg.contains("16"), "message names the cluster size: {msg}")
        }
        other => panic!("expected InvalidParallelism, got {:?}", other.map(|_| ())),
    }
}
