//! Cross-crate integration: the multi-job training service end to end —
//! verified admission, time-sharing, preemption/resume, and the event
//! stream's Perfetto mirror through the obs layer.

use angel_core::{ObsThread, Recorder};
use angel_model::TransformerConfig;
use angel_service::{ControlPlane, JobEventKind, JobSpec, RejectReason, Service, ServiceConfig};

fn tiny(name: &str, iters: usize) -> JobSpec {
    JobSpec::new(
        name,
        TransformerConfig::gpt3_1_7b()
            .with_layers(2)
            .with_seq_len(256),
        iters,
    )
}

/// The acceptance scenario: ≥3 concurrently admitted jobs, at least one
/// preemption and one resume, and every admission justified by the
/// verifier's peak-memory certificate.
#[test]
fn service_timeshares_with_verified_admissions() {
    let mut cp = ControlPlane::new(&ServiceConfig::new(4));
    cp.submit(tiny("alpha", 6).with_servers(2, 1), 0);
    cp.submit(tiny("beta", 6), 0);
    cp.submit(tiny("gamma", 6), 0);
    // A high-priority latecomer that needs more than what's free (free = 0
    // once alpha+beta+gamma hold 2+1+1) — forces a preemption.
    cp.submit(tiny("urgent", 2).with_servers(2, 2).with_priority(7), 1);
    let report = cp.into_report();

    assert_eq!(report.admitted, 4);
    assert_eq!(report.completed, 4);
    assert!(report.max_concurrent >= 3, "got {}", report.max_concurrent);
    assert!(report.preemptions >= 1);
    assert!(report.resumes >= 1);
    // Every admission carries a certificate whose provable peak fits the
    // slice budget — the admission predicate itself.
    assert_eq!(report.admissions.len(), 4);
    for a in &report.admissions {
        assert!(
            a.certificate.peak_bound_bytes <= a.certificate.gpu_budget_bytes,
            "{} admitted without a fitting certificate",
            a.name
        );
    }
    // Utilization is meaningful and TTFI is recorded per completion.
    assert!(report.utilization > 0.0 && report.utilization <= 1.0);
    assert_eq!(report.ttfi_ns.len(), 4);
    assert!(report.ttfi_percentile_ns(0.99) >= report.ttfi_percentile_ns(0.50));
}

/// Job events mirror onto the obs layer: counters per event kind and
/// instants on the dedicated `service` Perfetto track.
#[test]
fn job_events_reach_the_obs_layer() {
    let recorder = Recorder::enabled();
    let cfg = ServiceConfig::new(1).with_recorder(recorder.clone());
    let mut cp = ControlPlane::new(&cfg);
    cp.submit(tiny("observed", 2), 0);
    cp.submit(
        JobSpec::new("whale", TransformerConfig::gpt3_28b().with_layers(3000), 1),
        1,
    );
    let report = cp.into_report();
    assert_eq!(report.completed, 1);
    assert_eq!(report.rejected, 1);

    let snap = recorder.snapshot();
    assert_eq!(snap.counters.get("service.job_queued"), Some(&2));
    assert_eq!(snap.counters.get("service.job_admitted"), Some(&1));
    assert_eq!(snap.counters.get("service.job_completed"), Some(&1));
    assert_eq!(snap.counters.get("service.job_rejected"), Some(&1));
    // Instants and counter samples landed on the dedicated service track.
    let service_events = recorder
        .events()
        .iter()
        .filter(|e| e.thread == ObsThread::Service)
        .count();
    assert!(service_events >= 4, "got {service_events}");
}

/// The threaded front-end (the async-control-plane substitution) behaves
/// identically to driving the control plane directly.
#[test]
fn threaded_service_matches_direct_control_plane() {
    let submit_all = |direct: &mut ControlPlane| {
        direct.submit(tiny("a", 3).with_servers(2, 1), 0);
        direct.submit(tiny("b", 2).with_priority(2), 10);
    };
    let mut direct = ControlPlane::new(&ServiceConfig::new(2));
    submit_all(&mut direct);
    let want = direct.into_report();

    let svc = Service::spawn(ServiceConfig::new(2));
    svc.submit(tiny("a", 3).with_servers(2, 1), 0);
    svc.submit(tiny("b", 2).with_priority(2), 10);
    let got = svc.shutdown();

    assert_eq!(got.events, want.events);
    assert_eq!(got.makespan_ns, want.makespan_ns);
    assert_eq!(got.ttfi_ns, want.ttfi_ns);
}

/// Structural rejections are typed and terminal.
#[test]
fn rejections_are_typed() {
    let mut cp = ControlPlane::new(&ServiceConfig::new(1));
    cp.submit(tiny("no-iters", 0), 0);
    let report = cp.into_report();
    assert!(matches!(
        report.events.last().map(|e| &e.kind),
        Some(JobEventKind::Rejected {
            reason: RejectReason::BadSpec { .. }
        })
    ));
}
