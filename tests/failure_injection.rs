//! Failure injection — Section 3.1's "Failure and Recovery": pre-training
//! jobs run for weeks on hundreds of GPUs, so the system must survive
//! resource loss and restarts.

use angel_core::lockfree::{ClearPolicy, LayerState, LockFreeTrainer, MemoryStore, SgdOptimizer};
use angel_core::{Engine, EngineConfig};
use angel_hw::DeviceId;
use angel_integration::{server, small_gpt};
use angel_model::TransformerConfig;

/// Losing a server mid-job: re-initializing on the smaller fleet must
/// either succeed with a fresh schedule or fail with a clean capacity error
/// — never panic or corrupt state.
#[test]
fn shrinking_the_fleet_reinitializes_cleanly() {
    let model = TransformerConfig::gpt3_13b();
    let mut last_sps = f64::INFINITY;
    for servers in [4usize, 2, 1] {
        let cfg = EngineConfig::servers(servers).with_batch_size(2);
        match Engine::initialize(&model, &cfg) {
            Ok(mut e) => {
                let s = e.train_iteration();
                assert!(s.samples_per_sec < last_sps * 1.01);
                last_sps = s.samples_per_sec;
            }
            Err(e) => {
                // Acceptable terminal state: clean capacity error.
                let msg = e.to_string();
                assert!(msg.contains("exceed"), "unexpected error: {msg}");
            }
        }
    }
}

/// Device-capacity shrink: a tighter GPU budget (e.g. another tenant's
/// reservation) degrades residency but the schedule stays within budget.
#[test]
fn gpu_budget_shrink_degrades_gracefully() {
    let model = small_gpt();
    let mut prev_resident = 2.0f64;
    for reserved_gib in [2u64, 8, 16, 24, 32] {
        let cfg = server(2).with_gpu_reserved(reserved_gib << 30);
        match Engine::initialize(&model, &cfg) {
            Ok(engine) => {
                let stats = engine.schedule().stats;
                assert!(stats.peak_gpu_bytes <= cfg.gpu_budget());
                assert!(stats.resident_fraction <= prev_resident + 1e-9);
                prev_resident = stats.resident_fraction;
            }
            Err(_) => break, // eventually nothing fits — fine
        }
    }
}

/// Allocator behaviour at exhaustion: failed allocations must not leak
/// pages, and the pool must keep serving after the failure.
#[test]
fn allocator_survives_exhaustion_cycles() {
    let mut alloc = angel_core::PageAllocator::with_page_size(1 << 20, false);
    alloc.add_pool(DeviceId::gpu(0), 8 << 20).unwrap();
    for _round in 0..50 {
        let a = alloc.alloc_tensor_raw(5 << 20, DeviceId::gpu(0)).unwrap();
        assert!(alloc.alloc_tensor_raw(5 << 20, DeviceId::gpu(0)).is_err());
        let b = alloc.alloc_tensor_raw(3 << 20, DeviceId::gpu(0)).unwrap();
        alloc.release_tensor(a).unwrap();
        alloc.release_tensor(b).unwrap();
        assert_eq!(alloc.stats(DeviceId::gpu(0)).used_pages, 0);
    }
}

/// Checkpoint/restart of the lock-free trainer: shutting down returns the
/// authoritative FP32 states, and a new trainer resumed from them continues
/// exactly where the old one stopped.
#[test]
fn lockfree_checkpoint_restart() {
    let initial = vec![vec![1.0f32; 32]; 3];
    let t1 = LockFreeTrainer::spawn(
        initial.clone(),
        Box::new(MemoryStore::new(
            initial.iter().cloned().map(LayerState::new).collect(),
        )),
        Box::new(SgdOptimizer { lr: 0.1 }),
        |x| x,
        ClearPolicy::TakeAtSnapshot,
    );
    for l in 0..3 {
        t1.push_grads(l, vec![1.0; 32]);
    }
    t1.wait_quiescent();
    // "GPU failure": shut down, persist the states (the checkpoint).
    let checkpoint = t1.shutdown(3).expect("in-memory store cannot fail");
    let after_crash: Vec<Vec<f32>> = checkpoint.iter().map(|s| s.p32.clone()).collect();

    // Restart from the checkpoint and keep training.
    let t2 = LockFreeTrainer::spawn(
        after_crash.clone(),
        Box::new(MemoryStore::new(checkpoint)),
        Box::new(SgdOptimizer { lr: 0.1 }),
        |x| x,
        ClearPolicy::TakeAtSnapshot,
    );
    let (resumed, _) = t2.read_params(0);
    assert_eq!(
        resumed, after_crash[0],
        "restart must resume from the checkpoint"
    );
    t2.push_grads(0, vec![1.0; 32]);
    t2.wait_quiescent();
    let finals = t2.shutdown(3).expect("in-memory store cannot fail");
    assert!(
        finals[0].p32[0] < after_crash[0][0],
        "training continues after restart"
    );
}

/// A trainer dropped without shutdown (simulating an abrupt task kill) must
/// not hang the process.
#[test]
fn lockfree_abrupt_drop_does_not_hang() {
    let initial = vec![vec![0.0f32; 16]; 2];
    let t = LockFreeTrainer::spawn(
        initial.clone(),
        Box::new(MemoryStore::new(
            initial.iter().cloned().map(LayerState::new).collect(),
        )),
        Box::new(SgdOptimizer { lr: 0.1 }),
        |x| x,
        ClearPolicy::OnUpdateReceipt,
    );
    t.push_grads(0, vec![1.0; 16]);
    drop(t); // Drop impl must stop both threads
}
