//! Online-replanning robustness under *random* cluster-event sequences.
//!
//! `Engine::run_online` documents three invariants this harness pins down
//! property-style (the unit tests in `engine.rs` check single scenarios):
//!
//! 1. **Budget accounting** — `gpu_reserved` evolves exactly as the event
//!    semantics say: outages tighten it by 1/16 of the current budget,
//!    server losses carry it unchanged onto the survivors, and resizes
//!    restore the initialization baseline (the outage→resize regression).
//! 2. **Every splice re-verifies** — in debug builds each spliced lowering
//!    passes the §8 plan-graph verifier and the §13 SPMD certifier
//!    (`SpliceReport::verified`).
//! 3. **No abandoned tail** — iterations without an injected fault run
//!    clean, and after the run the engine's next iteration is
//!    byte-identical to a fresh engine initialized at the spliced config:
//!    no state from any abandoned plan tail leaks forward.

use angel_core::{ClusterEvent, Engine, EngineConfig, FaultTarget};
use angel_model::TransformerConfig;
use proptest::prelude::*;

fn tiny() -> TransformerConfig {
    TransformerConfig::gpt3_1_7b()
        .with_layers(2)
        .with_seq_len(256)
}

const ITERS: usize = 5;

/// Decode proptest-chosen codes into at most one event per iteration, never
/// exhausting the fleet, and replay the documented splice semantics to
/// compute the expected end state: `(events, servers, gpu_reserved)`.
fn build_events(
    codes: &[u8],
    start_servers: usize,
    capacity: u64,
    baseline: u64,
) -> (Vec<ClusterEvent>, usize, u64) {
    let mut events = Vec::new();
    let mut servers = start_servers;
    let mut reserved = baseline;
    for (at_iter, &code) in codes.iter().enumerate() {
        // Splices only happen when an iteration follows the boundary.
        let splices = at_iter + 1 < ITERS;
        match code % 4 {
            0 => {} // quiet boundary
            1 => {
                events.push(ClusterEvent::Outage {
                    at_iter,
                    target: FaultTarget::Gpu,
                    at_ns: 1_000,
                    duration_ns: 50_000,
                });
                if splices {
                    reserved += (capacity - reserved) / 16;
                }
            }
            2 => {
                // Lose one server, only while survivors remain.
                if servers >= 2 {
                    events.push(ClusterEvent::ServerLoss {
                        at_iter,
                        servers: 1,
                        at_ns: 1_000,
                    });
                    if splices {
                        servers -= 1;
                    }
                }
            }
            _ => {
                let to = 1 + (code >= 4) as usize; // resize to 1 or 2
                events.push(ClusterEvent::Resize {
                    at_iter,
                    servers: to,
                });
                if splices {
                    servers = to;
                    reserved = baseline;
                }
            }
        }
    }
    (events, servers, reserved)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn random_event_sequences_preserve_invariants(
        start in 1usize..3,
        codes in proptest::collection::vec(0u8..8, ITERS..ITERS + 1),
    ) {
        let cfg = EngineConfig::servers(start);
        let capacity = cfg.cluster.server.gpu(0).capacity;
        let baseline = cfg.gpu_reserved;
        let (events, want_servers, want_reserved) =
            build_events(&codes, start, capacity, baseline);

        let mut e = Engine::initialize(&tiny(), &cfg).unwrap();
        let r = e.run_online(ITERS, &events).unwrap();
        prop_assert_eq!(r.per_iter.len(), ITERS);

        // 1. Budget accounting replays exactly.
        prop_assert_eq!(e.config().cluster.num_servers, want_servers);
        prop_assert_eq!(e.config().gpu_reserved, want_reserved);
        prop_assert!(e.config().gpu_reserved >= baseline);
        prop_assert!(e.config().gpu_budget() > 0);

        // 2. One splice per event with a following iteration, each onto a
        //    live fleet, each re-verified in debug builds.
        let expected_splices = events.iter().filter(|ev| ev.at_iter() + 1 < ITERS).count();
        prop_assert_eq!(r.splices.len(), expected_splices);
        for s in &r.splices {
            prop_assert!(s.servers >= 1);
            if cfg!(debug_assertions) {
                prop_assert!(s.verified, "splice at iter {} was not re-verified", s.at_iter);
            }
        }

        // 3. No abandoned tail: fault-free iterations completed every task,
        //    and the engine's next iteration matches a fresh engine at the
        //    final spliced config bit-for-bit.
        for (k, stats) in r.per_iter.iter().enumerate() {
            let faulted = events.iter().any(|ev| {
                ev.at_iter() == k && !matches!(ev, ClusterEvent::Resize { .. })
            });
            if !faulted {
                prop_assert!(stats.tasks_failed == 0, "clean iteration {} failed tasks", k);
            }
        }
        let next = e.train_iteration();
        let fresh = Engine::initialize(&tiny(), e.config()).unwrap().train_iteration();
        prop_assert_eq!(next, fresh);
    }
}

/// The outage→resize→outage regression, cross-crate: the second outage must
/// tighten from the restored baseline, not from the first outage's already
/// tightened reservation (the bug was `gpu_reserved` ratcheting forever).
#[test]
fn resize_recovery_is_idempotent_across_outage_cycles() {
    let outage = |at_iter| ClusterEvent::Outage {
        at_iter,
        target: FaultTarget::Gpu,
        at_ns: 1_000,
        duration_ns: 50_000,
    };
    let cycle = |n: usize| {
        let mut e = Engine::initialize(&tiny(), &EngineConfig::servers(1)).unwrap();
        let mut events = Vec::new();
        for c in 0..n {
            events.push(outage(2 * c));
            events.push(ClusterEvent::Resize {
                at_iter: 2 * c + 1,
                servers: 1,
            });
        }
        let r = e.run_online(2 * n + 1, &events).unwrap();
        assert_eq!(r.splices.len(), 2 * n);
        e.config().gpu_reserved
    };
    let baseline = EngineConfig::servers(1).gpu_reserved;
    // However many outage→resize cycles run, the reservation always comes
    // back to baseline — it does not ratchet.
    assert_eq!(cycle(1), baseline);
    assert_eq!(cycle(3), baseline);
}
