//! Offline stand-in for the `serde` crate (see `vendor/README.md`).
//!
//! The workspace only *derives* `Serialize`/`Deserialize` as forward-looking
//! annotations — nothing serializes through serde's data model (the one JSON
//! producer, `angel-bench`, builds `serde_json::Value` trees by hand). The
//! traits are therefore empty markers with blanket impls and the derives
//! expand to nothing.

pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Owned-deserialization marker, mirroring serde's `DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T> DeserializeOwned for T {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
