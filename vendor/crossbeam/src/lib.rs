//! Offline stand-in for `crossbeam` (see `vendor/README.md`).
//!
//! Only `crossbeam::channel::{unbounded, Sender, Receiver}` is used by the
//! workspace (the lock-free updating mechanism's gradient mailbox). The
//! stand-in wraps `std::sync::mpsc`; the `Sender` adds a mutex so it is
//! `Sync` like crossbeam's (mpsc senders are only `Send`).

pub mod channel {
    use std::sync::mpsc;
    use std::sync::Mutex;

    pub use std::sync::mpsc::{RecvError, SendError, TryRecvError};

    /// Multi-producer sender; clone one per producer thread.
    pub struct Sender<T> {
        inner: Mutex<mpsc::Sender<T>>,
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.inner
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .send(value)
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender {
                inner: Mutex::new(self.inner.lock().unwrap_or_else(|e| e.into_inner()).clone()),
            }
        }
    }

    /// Receiving end; owned by a single consumer thread.
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    impl<T> Receiver<T> {
        /// Block until a message arrives or all senders are dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv()
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.inner.try_recv()
        }
    }

    /// An unbounded MPSC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (
            Sender {
                inner: Mutex::new(tx),
            },
            Receiver { inner: rx },
        )
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fan_in_across_threads() {
            let (tx, rx) = unbounded::<u32>();
            let handles: Vec<_> = (0..4)
                .map(|i| {
                    let tx = tx.clone();
                    std::thread::spawn(move || tx.send(i).unwrap())
                })
                .collect();
            drop(tx);
            let mut got: Vec<u32> = (0..4).map(|_| rx.recv().unwrap()).collect();
            got.sort_unstable();
            assert_eq!(got, vec![0, 1, 2, 3]);
            assert!(rx.recv().is_err()); // all senders dropped
            for h in handles {
                h.join().unwrap();
            }
        }
    }
}
