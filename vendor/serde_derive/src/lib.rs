//! No-op `Serialize`/`Deserialize` derives for the vendored serde stand-in.
//!
//! The marker traits in `vendor/serde` have blanket impls, so the derives
//! need not (and must not) emit any code. `attributes(serde)` is declared so
//! `#[serde(...)]` field/container attributes parse if they ever appear.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
