//! Offline stand-in for `proptest` (see `vendor/README.md`).
//!
//! A miniature property-testing framework with the subset of proptest's API
//! the workspace uses: range/tuple strategies, `any::<T>()`, `prop_map`,
//! `prop_oneof!`, `collection::vec`, `num::f32::NORMAL`, and the `proptest!`
//! / `prop_assert*!` / `prop_assume!` macros. Differences from upstream:
//! cases are driven by a fixed-seed deterministic RNG (every run explores the
//! same inputs) and failing cases are reported without shrinking.

use rand::rngs::StdRng;
use rand::Rng;

/// The RNG handed to strategies.
pub type TestRng = StdRng;

/// Fixed-seed RNG for one test's case loop (used by `proptest!`; exposed so
/// the macro works in crates that do not depend on `rand` themselves).
pub fn new_test_rng() -> TestRng {
    use rand::SeedableRng;
    StdRng::seed_from_u64(0x5EED_0000)
}

/// Outcome of one generated case: `Reject` skips (from `prop_assume!`),
/// `Fail` aborts the test (from `prop_assert*!`).
#[derive(Debug)]
pub enum TestCaseError {
    Reject,
    Fail(String),
}

/// Runner configuration. Only `cases` is honored.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A generator of values. Object-safe so heterogeneous strategies can be
/// boxed into [`Union`]s by `prop_oneof!`.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Equal-weight choice between boxed strategies (built by `prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let pick = rng.gen_range(0..self.options.len());
        self.options[pick].generate(rng)
    }
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.start..self.end)
            }
        }
    )*};
}
int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        rng.gen_range(self.start..self.end)
    }
}

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.start..self.end)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
}

/// Types with a canonical "anything" strategy, for `any::<T>()`.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.gen_bool(0.5)
    }
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.gen::<u64>() as $t
            }
        }
    )*};
}
arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        f32::from_bits(rng.gen::<u32>())
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        f64::from_bits(rng.gen::<u64>())
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy over all values of `T` (mirrors `proptest::prelude::any`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Strategy for `Vec`s with element strategy `S` and length in `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.len.start..self.len.end);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Mirrors `proptest::collection::vec`.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { element, len }
    }
}

pub mod num {
    pub mod f32 {
        use crate::{Strategy, TestRng};
        use rand::Rng;

        /// Strategy over normal (non-zero, non-subnormal, finite) f32 values,
        /// mirroring `proptest::num::f32::NORMAL`.
        pub struct NormalF32;

        pub const NORMAL: NormalF32 = NormalF32;

        impl Strategy for NormalF32 {
            type Value = f32;
            fn generate(&self, rng: &mut TestRng) -> f32 {
                loop {
                    let x = f32::from_bits(rng.gen::<u32>());
                    if x.is_normal() {
                        return x;
                    }
                }
            }
        }
    }
}

pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError,
    };
}

/// Equal-weight union of strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![ $( $crate::Strategy::boxed($strategy) ),+ ])
    };
}

/// Skip the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)*)));
        }
    };
}

/// Fail the current case unless the operands compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
                l, r
            )));
        }
    }};
}

/// Fail the current case if the operands compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `left != right` (both `{:?}`)",
                l
            )));
        }
    }};
}

/// Define property tests. Each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that runs `config.cases` generated cases with a
/// fixed-seed RNG.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng: $crate::TestRng = $crate::new_test_rng();
            for case in 0..config.cases {
                let outcome = (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                    $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)+
                    $body
                    ::std::result::Result::Ok(())
                })();
                match outcome {
                    ::std::result::Result::Ok(()) => {}
                    ::std::result::Result::Err($crate::TestCaseError::Reject) => {}
                    ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                        panic!("proptest {} failed at case {}: {}", stringify!($name), case, msg)
                    }
                }
            }
        }
        $crate::__proptest_fns! { ($config) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Op {
        A(u64),
        B(bool),
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, y in 1usize..4) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((1..4).contains(&y));
        }

        /// Tuple + vec + oneof strategies compose.
        #[test]
        fn composed_strategies(ops in collection::vec(
            prop_oneof![
                (1u64..100).prop_map(Op::A),
                (any::<bool>(),).prop_map(|(b,)| Op::B(b)),
            ],
            1..20,
        )) {
            prop_assert!(!ops.is_empty());
            for op in &ops {
                if let Op::A(v) = op {
                    prop_assert!((1..100).contains(v), "bad value {v}");
                }
            }
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u32..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn normal_floats_are_normal(x in crate::num::f32::NORMAL) {
            prop_assert!(x.is_normal());
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_panic() {
        // No #[test] on the inner fn: it is invoked directly below (an
        // inner #[test] would be unnameable to the harness anyway).
        proptest! {
            fn inner(x in 0u32..10) {
                prop_assert!(x > 100, "x was {x}");
            }
        }
        inner();
    }
}
