//! Offline stand-in for `rand` 0.8 (see `vendor/README.md`).
//!
//! Provides the surface the workspace uses — `StdRng::seed_from_u64`,
//! `gen_range` over integer ranges, `gen_bool`, and `gen::<f32>()` — backed
//! by SplitMix64, a well-mixed deterministic 64-bit generator. Statistical
//! quality is ample for the synthetic corpora and randomized tests here; the
//! stream differs from upstream rand's ChaCha-based `StdRng`, which only
//! shifts which concrete pseudo-random sequence seeds produce.

/// Seedable constructor, mirroring `rand::SeedableRng`'s `seed_from_u64`.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Uniform sampling from a range, mirroring `rand::distributions::uniform`.
pub trait SampleRange {
    type Output;
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

/// Types producible by `Rng::gen`, mirroring the `Standard` distribution.
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

/// Raw 64-bit output, the base the rest is derived from.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

pub trait Rng: RngCore {
    /// Uniform value in `range` (modulo sampling; bias is negligible for the
    /// small spans used here).
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Bernoulli trial with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }

    /// A value of `T` from its standard distribution (floats: uniform [0,1)).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }
}

impl<R: RngCore> Rng for R {}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for std::ops::Range<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
int_range!(u8, u16, u32, u64, usize);

macro_rules! signed_range {
    ($($t:ty),*) => {$(
        impl SampleRange for std::ops::Range<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + (rng.next_u64() % span) as i128) as $t
            }
        }
    )*};
}
signed_range!(i8, i16, i32, i64, isize);

impl SampleRange for std::ops::Range<f64> {
    type Output = f64;
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let r = ((rng.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64);
        self.start + r * (self.end - self.start)
    }
}

impl SampleRange for std::ops::Range<f32> {
    type Output = f32;
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        let r = ((rng.next_u64() >> 40) as f32) * (1.0 / (1u64 << 24) as f32);
        self.start + r * (self.end - self.start)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        ((rng.next_u64() >> 40) as f32) * (1.0 / (1u64 << 24) as f32)
    }
}
impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        ((rng.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
    }
}
impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}
impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}
impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
        let mut c = StdRng::seed_from_u64(8);
        let same: usize = (0..100)
            .filter(|_| {
                StdRng::seed_from_u64(7).gen_range(0u64..1_000_000) == c.gen_range(0u64..1_000_000)
            })
            .count();
        assert!(same < 5);
    }

    #[test]
    fn ranges_are_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let f: f32 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.85)).count();
        assert!((8_000..9_000).contains(&hits), "hits={hits}");
    }
}
