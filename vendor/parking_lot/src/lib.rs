//! Offline stand-in for `parking_lot` (see `vendor/README.md`).
//!
//! Wraps `std::sync` locks with parking_lot's ergonomics: `lock()`,
//! `read()` and `write()` return guards directly instead of `LockResult`s.
//! Poisoning is ignored (parking_lot has none): a poisoned std lock's inner
//! guard is extracted and returned.

pub use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn guards_deref() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);

        let rw = RwLock::new(String::from("a"));
        rw.write().push('b');
        assert_eq!(rw.read().as_str(), "ab");
    }

    #[test]
    fn shared_across_threads() {
        let m = std::sync::Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = m.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 8000);
    }
}
