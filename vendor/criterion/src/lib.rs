//! Offline stand-in for `criterion` (see `vendor/README.md`).
//!
//! Benchmarks compile and run with the same source surface —
//! `criterion_group!`, `criterion_main!`, `benchmark_group`,
//! `bench_function`, `bench_with_input`, `Bencher::iter` — but report a
//! simple mean ns/iter over `sample_size` timed samples instead of
//! criterion's full statistical analysis.

use std::fmt;
use std::time::Instant;

/// Benchmark identifier: a function name, optionally with a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId(format!("{function}/{parameter}"))
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// Runs the closure under test and accumulates timing.
pub struct Bencher {
    samples: usize,
    total_ns: u128,
    iters: u64,
}

impl Bencher {
    /// Time `f`, calling it `samples` times (plus one warm-up call).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        std::hint::black_box(f()); // warm-up, excluded from timing
        let start = Instant::now();
        for _ in 0..self.samples {
            std::hint::black_box(f());
        }
        self.total_ns += start.elapsed().as_nanos();
        self.iters += self.samples as u64;
    }

    fn report(&self, name: &str) {
        if self.iters == 0 {
            println!("bench {name:<40} (no samples)");
        } else {
            let mean = self.total_ns / self.iters as u128;
            println!("bench {name:<40} {mean:>12} ns/iter ({} iters)", self.iters);
        }
    }
}

/// Top-level harness handle.
pub struct Criterion {
    sample_size: usize,
    /// `cargo bench -- --test` smoke mode (real criterion's behavior): run
    /// every benchmark exactly once to prove it compiles and executes, with
    /// no timing statistics.
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            test_mode: std::env::args().any(|a| a == "--test"),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    fn effective_samples(&self) -> usize {
        if self.test_mode {
            1
        } else {
            self.sample_size
        }
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.effective_samples(),
            test_mode: self.test_mode,
            _criterion: self,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        run_one(&id.into().0, self.effective_samples(), &mut f);
        self
    }
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, samples: usize, f: &mut F) {
    let mut b = Bencher {
        samples,
        total_ns: 0,
        iters: 0,
    };
    f(&mut b);
    b.report(name);
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    test_mode: bool,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        if !self.test_mode {
            self.sample_size = n;
        }
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into().0);
        run_one(&label, self.sample_size, &mut f);
        self
    }

    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into().0);
        run_one(&label, self.sample_size, &mut |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// Re-export so benches may use `criterion::black_box`.
pub use std::hint::black_box;

/// Declare a benchmark group function calling each target with a configured
/// [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declare the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_and_ids_run() {
        let mut c = Criterion::default().sample_size(3);
        let mut calls = 0usize;
        {
            let mut g = c.benchmark_group("g");
            g.bench_function(BenchmarkId::new("f", 7), |b| b.iter(|| calls += 1));
            g.bench_with_input(BenchmarkId::from_parameter(2), &2usize, |b, &n| {
                b.iter(|| black_box(n * 2))
            });
            g.finish();
        }
        c.bench_function("plain", |b| b.iter(|| black_box(1 + 1)));
        assert_eq!(calls, 4); // warm-up + 3 samples
    }
}
