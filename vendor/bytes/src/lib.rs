//! Offline stand-in for `bytes` (see `vendor/README.md`).
//!
//! The workspace uses `BytesMut` only as an owned zero-initialized buffer
//! backing real pages (`BytesMut::zeroed` + slice access), so the stand-in
//! is a `Vec<u8>` newtype with slice deref.

/// A unique, growable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut {
            inner: Vec::with_capacity(capacity),
        }
    }

    /// A buffer of `len` zero bytes.
    pub fn zeroed(len: usize) -> Self {
        BytesMut {
            inner: vec![0u8; len],
        }
    }

    pub fn len(&self) -> usize {
        self.inner.len()
    }

    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    pub fn extend_from_slice(&mut self, extend: &[u8]) {
        self.inner.extend_from_slice(extend);
    }

    pub fn resize(&mut self, new_len: usize, value: u8) {
        self.inner.resize(new_len, value);
    }
}

impl std::ops::Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl std::ops::DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.inner
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.inner
    }
}

impl AsMut<[u8]> for BytesMut {
    fn as_mut(&mut self) -> &mut [u8] {
        &mut self.inner
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(inner: Vec<u8>) -> Self {
        BytesMut { inner }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_and_slicing() {
        let mut b = BytesMut::zeroed(8);
        assert_eq!(b.len(), 8);
        assert!(b.iter().all(|&x| x == 0));
        b[3] = 7;
        assert_eq!(&b[2..5], &[0, 7, 0]);
    }
}
