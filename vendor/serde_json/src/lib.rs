//! Offline stand-in for `serde_json` (see `vendor/README.md`).
//!
//! A real, small JSON library scoped to what the workspace uses: a [`Value`]
//! tree built with the [`json!`] macro, [`to_string_pretty`] for emitting
//! Chrome traces and experiment records, [`from_str`] for parsing them back
//! in tests, and indexed access (`value["key"]`, `value[0]`, `as_array`,
//! `as_f64`). Object keys are kept in insertion order.

use std::fmt;

/// An order-preserving string-keyed map (JSON objects keep insertion order).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        if let Some((_, v)) = self.entries.iter_mut().find(|(k, _)| *k == key) {
            return Some(std::mem::replace(v, value));
        }
        self.entries.push((key, value));
        None
    }

    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }
}

/// A JSON value. Numbers keep their integer-ness so pretty printing writes
/// `1`, not `1.0`.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Int(i64),
    Float(f64),
    String(String),
    Array(Vec<Value>),
    Object(Map),
}

static NULL: Value = Value::Null;

impl Value {
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Int(i) if *i >= 0 => Some(*i as u64),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            _ => None,
        }
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

macro_rules! from_int {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value { Value::Int(v as i64) }
        }
    )*};
}
from_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl From<f32> for Value {
    fn from(v: f32) -> Value {
        Value::Float(v as f64)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Float(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::String(v.to_string())
    }
}
impl From<&String> for Value {
    fn from(v: &String) -> Value {
        Value::String(v.clone())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::String(v)
    }
}
impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Value {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

/// Build a [`Value`] from JSON-shaped syntax. Object values may be nested
/// `{...}`/`[...]` literals or arbitrary Rust expressions convertible via
/// `Value::from`.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({}) => { $crate::Value::Object($crate::Map::new()) };
    ({ $($body:tt)+ }) => {{
        #[allow(unused_mut)]
        let mut object = $crate::Map::new();
        $crate::json_object_entries!(object; $($body)+);
        $crate::Value::Object(object)
    }};
    ([]) => { $crate::Value::Array(::std::vec::Vec::new()) };
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::Value::from($elem) ),* ])
    };
    ($other:expr) => { $crate::Value::from($other) };
}

/// Internal: munch `"key": value` pairs. Single-token-tree values (nested
/// objects/arrays, literals, idents) recurse through `json!`; multi-token
/// expressions fall through to the `expr` rules.
#[doc(hidden)]
#[macro_export]
macro_rules! json_object_entries {
    ($object:ident;) => {};
    ($object:ident; $key:literal : $value:tt , $($rest:tt)*) => {
        $object.insert($key.to_string(), $crate::json!($value));
        $crate::json_object_entries!($object; $($rest)*);
    };
    ($object:ident; $key:literal : $value:tt) => {
        $object.insert($key.to_string(), $crate::json!($value));
    };
    ($object:ident; $key:literal : $value:expr , $($rest:tt)*) => {
        $object.insert($key.to_string(), $crate::Value::from($value));
        $crate::json_object_entries!($object; $($rest)*);
    };
    ($object:ident; $key:literal : $value:expr) => {
        $object.insert($key.to_string(), $crate::Value::from($value));
    };
}

/// Error type for parsing/serialization.
#[derive(Debug)]
pub struct Error {
    msg: String,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.msg)
    }
}
impl std::error::Error for Error {}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_value(out: &mut String, v: &Value, indent: usize, pretty: bool) {
    let (nl, pad, pad_in) = if pretty {
        ("\n", "  ".repeat(indent), "  ".repeat(indent + 1))
    } else {
        ("", String::new(), String::new())
    };
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                out.push_str(&f.to_string());
            } else {
                out.push_str("null"); // JSON has no Inf/NaN
            }
        }
        Value::String(s) => escape_into(out, s),
        Value::Array(a) => {
            if a.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, elem) in a.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad_in);
                write_value(out, elem, indent + 1, pretty);
            }
            out.push_str(nl);
            out.push_str(&pad);
            out.push(']');
        }
        Value::Object(m) => {
            if m.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in m.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad_in);
                escape_into(out, k);
                out.push(':');
                if pretty {
                    out.push(' ');
                }
                write_value(out, val, indent + 1, pretty);
            }
            out.push_str(nl);
            out.push_str(&pad);
            out.push('}');
        }
    }
}

/// Serialize with 2-space indentation.
pub fn to_string_pretty(value: &Value) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, value, 0, true);
    Ok(out)
}

/// Serialize compactly.
pub fn to_string(value: &Value) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, value, 0, false);
    Ok(out)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected '{}' at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_lit(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.eat_lit("null", Value::Null),
            Some(b't') => self.eat_lit("true", Value::Bool(true)),
            Some(b'f') => self.eat_lit("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(Error::new(format!("unexpected byte at {}", self.pos))),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b't') => s.push('\t'),
                        Some(b'r') => s.push('\r'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("bad \\u escape"))?;
                            s.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("bad \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(Error::new("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Advance one UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::new("invalid UTF-8"))?;
                    let c = rest.chars().next().unwrap();
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::new(format!("invalid number '{text}'")))
        } else {
            match text.parse::<i64>() {
                Ok(i) => Ok(Value::Int(i)),
                Err(_) => text
                    .parse::<f64>()
                    .map(Value::Float)
                    .map_err(|_| Error::new(format!("invalid number '{text}'"))),
            }
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::new(format!("expected ',' or ']' at {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(Error::new(format!("expected ',' or '}}' at {}", self.pos))),
            }
        }
    }
}

/// Parse a JSON document.
pub fn from_str(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing data at byte {}", p.pos)));
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn macro_builds_nested_objects() {
        let name = String::from("gpu");
        let v = json!({
            "name": "thread_name",
            "pid": 1,
            "tid": 3usize,
            "args": {"name": name},
        });
        assert_eq!(v["pid"].as_i64(), Some(1));
        assert_eq!(v["args"]["name"].as_str(), Some("gpu"));
    }

    #[test]
    fn macro_accepts_field_access_exprs() {
        struct R(usize);
        struct T {
            resource: R,
        }
        let task = T { resource: R(7) };
        let v = json!({ "tid": task.resource.0, "dur": 1.5f64 / 3.0 });
        assert_eq!(v["tid"].as_i64(), Some(7));
        assert!(v["dur"].as_f64().unwrap() > 0.49);
    }

    #[test]
    fn round_trips_through_pretty_printer() {
        let v = json!({
            "s": "a \"quoted\"\nline",
            "n": -42,
            "f": 2.5,
            "a": vec![json!(1), json!("two")],
            "empty": {},
        });
        let text = to_string_pretty(&v).unwrap();
        let parsed = from_str(&text).unwrap();
        assert_eq!(parsed, v);
    }

    #[test]
    fn index_misses_return_null() {
        let v = json!({"a": 1});
        assert!(v["missing"].is_null());
        assert!(v["a"][3].is_null());
    }

    #[test]
    fn parses_exponents_and_unicode() {
        let v = from_str(r#"{"x": 1.5e3, "s": "é", "b": [true, false, null]}"#).unwrap();
        assert_eq!(v["x"].as_f64(), Some(1500.0));
        assert_eq!(v["s"].as_str(), Some("é"));
        assert_eq!(v["b"].as_array().unwrap().len(), 3);
    }
}
